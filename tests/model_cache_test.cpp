// Tests for the ModelCache: hit/miss accounting, the model-affecting vs
// derivation-only options split, LRU eviction, failure semantics,
// byte-identical results with the cache on vs off across the registry, and
// concurrent lookup-or-build (the racing-batch case runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

using stg::Stg;

Stg dummy_stg() {
  // A structurally valid STG with a silent transition: SemanticModel::build
  // rejects it (the paper's method needs a signal edge on every transition).
  Stg stg;
  const stg::SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const stg::SignalId dum = stg.add_signal("eps", stg::SignalKind::Dummy);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  const auto a_dn = stg.add_transition(a, stg::Polarity::Fall);
  const auto mid = stg.add_dummy_transition(dum);
  auto& net = stg.net();
  const auto p1 = net.add_place("p1");
  const auto p2 = net.add_place("p2");
  const auto p3 = net.add_place("p3");
  net.add_arc(p1, a_up);
  net.add_arc(a_up, p2);
  net.add_arc(p2, mid);
  net.add_arc(mid, p3);
  net.add_arc(p3, a_dn);
  net.add_arc(a_dn, p1);
  net.set_initial_tokens(p1, 1);
  return stg;
}

TEST(ModelCache, SecondLookupHitsAndReturnsTheSameModel) {
  ModelCache cache;
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions options;

  bool built = false;
  const auto first = cache.lookup_or_build(stg, options, &built);
  EXPECT_TRUE(built);
  const auto second = cache.lookup_or_build(stg, options, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(first.get(), second.get());

  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);

  // The model is self-contained: it carries its own STG copy and targets.
  EXPECT_EQ(first->stg.signal_count(), stg.signal_count());
  EXPECT_EQ(first->targets, stg.non_input_signals());
  EXPECT_NE(first->unfolding, nullptr);
}

TEST(ModelCache, ExactAndApproxShareOneUnfoldingModel) {
  ModelCache cache;
  const Stg stg = stg::make_muller_pipeline(3);

  SynthesisOptions approx;
  approx.method = Method::UnfoldingApprox;
  SynthesisOptions exact;
  exact.method = Method::UnfoldingExact;
  SynthesisOptions sg;
  sg.method = Method::StateGraph;

  // Both unfolding methods consume the same segment — one key, one model.
  EXPECT_EQ(ModelCache::key_of(stg, approx), ModelCache::key_of(stg, exact));
  EXPECT_NE(ModelCache::key_of(stg, approx), ModelCache::key_of(stg, sg));

  const auto from_approx = cache.lookup_or_build(stg, approx);
  const auto from_exact = cache.lookup_or_build(stg, exact);
  const auto from_sg = cache.lookup_or_build(stg, sg);
  EXPECT_EQ(from_approx.get(), from_exact.get());
  EXPECT_NE(static_cast<const void*>(from_approx.get()),
            static_cast<const void*>(from_sg.get()));
  EXPECT_NE(from_sg->sgraph, nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ModelCache, DerivationOnlyOptionsShareAModel) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions base;

  // Architecture, minimisation, CSC handling, jobs, the approximation
  // policy and the (derivation-time) cut budget must not split the cache.
  SynthesisOptions variant = base;
  variant.architecture = Architecture::RsLatch;
  variant.minimize = false;
  variant.throw_on_csc = false;
  variant.jobs = 8;
  variant.approx_policy = ApproxSetPolicy::PaperChains;
  variant.cut_budget = 17;
  EXPECT_EQ(ModelCache::key_of(stg, base), ModelCache::key_of(stg, variant));

  // The StateGraph-only budget is irrelevant to an unfolding model...
  SynthesisOptions state_budget = base;
  state_budget.state_budget = 123;
  EXPECT_EQ(ModelCache::key_of(stg, base), ModelCache::key_of(stg, state_budget));

  // ...while genuinely model-affecting options split as they must.
  SynthesisOptions event_budget = base;
  event_budget.event_budget = 123;
  EXPECT_NE(ModelCache::key_of(stg, base), ModelCache::key_of(stg, event_budget));
  SynthesisOptions persistency = base;
  persistency.check_persistency = false;
  EXPECT_NE(ModelCache::key_of(stg, base), ModelCache::key_of(stg, persistency));
  SynthesisOptions cutoff = base;
  cutoff.cutoff = unf::UnfoldOptions::CutoffPolicy::TotalOrder;
  EXPECT_NE(ModelCache::key_of(stg, base), ModelCache::key_of(stg, cutoff));

  // Different STGs never collide, whatever the options.
  EXPECT_NE(ModelCache::key_of(stg, base),
            ModelCache::key_of(stg::make_muller_pipeline(2), base));
}

TEST(ModelCache, LruEvictsTheLeastRecentlyUsedModel) {
  ModelCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  const Stg a = stg::make_muller_pipeline(2);
  const Stg b = stg::make_muller_pipeline(3);
  const Stg c = stg::make_muller_pipeline(4);
  const SynthesisOptions options;

  const auto model_a = cache.lookup_or_build(a, options);
  (void)cache.lookup_or_build(b, options);
  (void)cache.lookup_or_build(a, options);  // touch: a is now most recent
  (void)cache.lookup_or_build(c, options);  // evicts b, not a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool built = false;
  const auto again_a = cache.lookup_or_build(a, options, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(model_a.get(), again_a.get());  // survived the eviction
  (void)cache.lookup_or_build(b, options, &built);
  EXPECT_TRUE(built);  // b was evicted and had to be rebuilt
}

/// Regression: capacity bounding and size() used to consult only the
/// ready-entry LRU list, so N concurrent distinct-key in-flight builds grew
/// the slot map unboundedly past the capacity and size() under-reported
/// residency.  In-flight slots now count: installing one evicts completed
/// entries to make room, and size()/stats() report them.
TEST(ModelCache, InFlightBuildsCountAgainstCapacityAndAreReported) {
  ModelCache cache(2);
  const SynthesisOptions options;
  const Stg warm_a = stg::make_paper_fig1();
  const Stg warm_b = stg::make_muller_pipeline(2);
  (void)cache.lookup_or_build(warm_a, options);
  (void)cache.lookup_or_build(warm_b, options);
  EXPECT_EQ(cache.size(), 2u);

  // Hold three distinct-key builds in flight (one past capacity) behind a
  // latch; the keyed API lets the test inject blocking builders.
  constexpr std::size_t kBuilders = 3;
  std::latch started(kBuilders);
  std::latch release(1);
  const Stg payload = stg::make_muller_pipeline(3);
  std::vector<std::thread> threads;
  threads.reserve(kBuilders);
  for (std::size_t t = 0; t < kBuilders; ++t) {
    threads.emplace_back([&, t] {
      (void)cache.lookup_or_build_keyed("in-flight-key-" + std::to_string(t), [&] {
        started.count_down();
        release.wait();
        return SemanticModel::build(payload, options);
      });
    });
  }
  started.wait();

  // Residency is truthfully reported while the builds run: three in-flight
  // slots occupy the whole (exceeded) capacity, and installing them evicted
  // both completed entries.
  ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.in_flight, kBuilders);
  EXPECT_EQ(stats.resident, kBuilders);
  EXPECT_EQ(cache.size(), kBuilders);
  EXPECT_EQ(stats.evictions, 2u);

  release.count_down();
  for (std::thread& thread : threads) thread.join();

  // Published: the bound holds again and no in-flight slots linger.
  stats = cache.stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(stats.builds, 2u + kBuilders);

  // The evicted warm entries rebuild on the next lookup (they were dropped,
  // not corrupted).
  bool built = false;
  (void)cache.lookup_or_build(warm_a, options, &built);
  EXPECT_TRUE(built);
}

/// When older in-flight builds occupy the whole capacity, a freshly
/// published model must not evict *itself* to honour the bound — it is
/// pinned, the bound stays transiently exceeded, and the model is reusable.
TEST(ModelCache, PublishingUnderFullInFlightResidencyKeepsTheNewModel) {
  ModelCache cache(1);
  const SynthesisOptions options;
  const Stg stg = stg::make_paper_fig1();

  std::latch started(1);
  std::latch release(1);
  std::thread holder([&] {
    (void)cache.lookup_or_build_keyed("held-key", [&] {
      started.count_down();
      release.wait();
      return SemanticModel::build(stg, options);
    });
  });
  started.wait();  // the in-flight slot now occupies the whole capacity

  bool built = false;
  (void)cache.lookup_or_build(stg, options, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(cache.size(), 2u);  // transiently over: pinned publish + in-flight

  // The published model survived its own publish-time eviction pass.
  (void)cache.lookup_or_build(stg, options, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(cache.stats().hits, 1u);

  release.count_down();
  holder.join();
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.stats().in_flight, 0u);
}

TEST(ModelCache, FailedBuildPropagatesAndIsNotCached) {
  ModelCache cache;
  const Stg bad = dummy_stg();
  const SynthesisOptions options;
  EXPECT_THROW((void)cache.lookup_or_build(bad, options), ImplementabilityError);
  // The failure is not cached: the slot is gone and a retry fails afresh
  // (were the STG repaired in the meantime, the retry would succeed).
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW((void)cache.lookup_or_build(bad, options), ImplementabilityError);
  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.failed_builds, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(ModelCache, ClearDropsCompletedEntries) {
  ModelCache cache;
  const SynthesisOptions options;
  (void)cache.lookup_or_build(stg::make_paper_fig1(), options);
  (void)cache.lookup_or_build(stg::make_muller_pipeline(2), options);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  bool built = false;
  (void)cache.lookup_or_build(stg::make_paper_fig1(), options, &built);
  EXPECT_TRUE(built);
}

/// The acceptance criterion of the cache: synthesis output is byte-identical
/// with and without it, across the whole Table-1 registry.
TEST(ModelCachePipeline, CacheOnMatchesCacheOffAcrossTheRegistry) {
  const auto& registry = benchmarks::table1();
  std::vector<Stg> stgs;
  for (const auto& bench : registry) stgs.push_back(bench.make());

  ModelCache cache;
  BatchOptions with_cache;
  with_cache.jobs = 4;
  with_cache.cache = &cache;
  BatchOptions without_cache;
  without_cache.jobs = 4;

  const BatchResult cached = synthesize_batch(stgs, with_cache);
  const BatchResult fresh = synthesize_batch(stgs, without_cache);
  // A second cached sweep is served entirely from the cache and must still
  // match (this is the `punt check` / ablation reuse pattern).
  const BatchResult cached_again = synthesize_batch(stgs, with_cache);
  EXPECT_EQ(cache.stats().misses, registry.size());
  EXPECT_EQ(cache.stats().hits, registry.size());

  ASSERT_EQ(cached.entries.size(), fresh.entries.size());
  for (std::size_t i = 0; i < cached.entries.size(); ++i) {
    ASSERT_TRUE(cached.entries[i].ok) << registry[i].name << ": "
                                      << cached.entries[i].error;
    ASSERT_TRUE(fresh.entries[i].ok) << registry[i].name;
    const auto& a = cached.entries[i].result.signals;
    const auto& b = fresh.entries[i].result.signals;
    const auto& c = cached_again.entries[i].result.signals;
    ASSERT_EQ(a.size(), b.size()) << registry[i].name;
    ASSERT_EQ(a.size(), c.size()) << registry[i].name;
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_TRUE(a[s].same_logic(b[s]))
          << registry[i].name << " signal " << a[s].name << " (cache on vs off)";
      EXPECT_TRUE(a[s].same_logic(c[s]))
          << registry[i].name << " signal " << a[s].name << " (first vs second hit)";
    }
    EXPECT_EQ(cached.entries[i].result.literal_count(),
              fresh.entries[i].result.literal_count())
        << registry[i].name;
  }
}

/// Two batch entries racing on the same STG build exactly one model.  This
/// is the concurrency contract of lookup_or_build; the test runs under
/// -fsanitize=thread in CI's thread-sanitizer job.
TEST(ModelCachePipeline, RacingBatchEntriesBuildExactlyOneModel) {
  const Stg stg = stg::make_muller_pipeline(4);
  std::vector<Stg> stgs(4, stg);

  ModelCache cache;
  BatchOptions options;
  options.jobs = 4;  // all entries in flight at once
  options.cache = &cache;
  const BatchResult batch = synthesize_batch(stgs, options);

  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // one entry won the build...
  EXPECT_EQ(stats.hits, 3u);    // ...the others joined it
  EXPECT_EQ(cache.size(), 1u);

  ASSERT_TRUE(batch.entries[0].ok) << batch.entries[0].error;
  for (std::size_t i = 1; i < batch.entries.size(); ++i) {
    ASSERT_TRUE(batch.entries[i].ok) << batch.entries[i].error;
    const auto& a = batch.entries[0].result.signals;
    const auto& b = batch.entries[i].result.signals;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_TRUE(a[s].same_logic(b[s])) << "entry " << i << " signal " << a[s].name;
    }
  }
}

TEST(ModelCachePipeline, ConcurrentLookupsReturnOnePointer) {
  const Stg stg = stg::make_vme_bus();
  ModelCache cache;
  const SynthesisOptions options;

  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const SemanticModel>> models(kThreads);
  std::atomic<std::size_t> builders{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        bool built = false;
        models[t] = cache.lookup_or_build(stg, options, &built);
        if (built) builders.fetch_add(1);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(builders.load(), 1u);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(models[0].get(), models[t].get()) << "thread " << t;
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, kThreads - 1);
}

/// A cached model outlives the STG it was built from (it owns a copy), so
/// synthesis through a long-lived cache cannot dangle.
TEST(ModelCachePipeline, CachedModelOutlivesTheSourceStg) {
  ModelCache cache;
  SynthesisOptions options;
  {
    const Stg temporary = stg::make_paper_fig1();
    (void)cache.lookup_or_build(temporary, options);
  }  // the source STG is gone; the cache still serves its model
  const Stg same_again = stg::make_paper_fig1();
  const SynthesisResult cached = synthesize(same_again, options, &cache);
  EXPECT_EQ(cache.stats().hits, 1u);
  const SynthesisResult fresh = synthesize(same_again, options);
  ASSERT_EQ(cached.signals.size(), fresh.signals.size());
  for (std::size_t s = 0; s < cached.signals.size(); ++s) {
    EXPECT_TRUE(cached.signals[s].same_logic(fresh.signals[s]));
  }
}

}  // namespace
}  // namespace punt::core
