// Cover refinement (paper §4.3).  Reference: the Fig. 4(c) worked example —
// refining the MR cover d e' of p5 with P'r = {p2,p4,p7,p9} yields
// a c' d e' + b c d e' (as a point set).
#include <gtest/gtest.h>

#include <set>

#include "src/core/approx.hpp"
#include "src/core/slices.hpp"
#include "src/logic/espresso.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"

namespace punt::core {
namespace {

using stg::SignalId;
using stg::Stg;
using unf::ConditionId;
using unf::EventId;
using unf::Unfolding;

ConditionId condition_by_place(const Unfolding& unf, const std::string& place) {
  for (std::size_t i = 0; i < unf.condition_count(); ++i) {
    const ConditionId c(static_cast<std::uint32_t>(i));
    if (unf.stg().net().place_name(unf.place(c)) == place) return c;
  }
  ADD_FAILURE() << "no condition for place " << place;
  return ConditionId();
}

std::set<std::string> cover_cubes(logic::Cover cover) {
  cover.normalize();
  std::set<std::string> out;
  for (const auto& cube : cover.cubes()) out.insert(cube.to_string());
  return out;
}

/// The slice hosting the Fig. 4(c) fragment: signal d's on-set slice (entry
/// +d', unbounded — d never falls), which contains the whole fragment.
struct Fig4cFixture {
  Stg stg = stg::make_paper_fig4c();
  Unfolding unf = Unfolding::build(stg);
  SignalId d = *stg.find_signal("d");
  std::vector<Slice> slices = signal_slices(unf, d, true);
  std::vector<EventId> events;

  Fig4cFixture() {
    EXPECT_EQ(slices.size(), 1u);
    EXPECT_TRUE(slices.front().bounds.empty());
    events = slice_events(unf, slices.front());
  }
};

TEST(Refine, Fig4cBaseMrCoverOfP5) {
  Fig4cFixture fx;
  const ConditionId p5 = condition_by_place(fx.unf, "p5");
  // Signals a..e: base code of [+d'] is 10010; a, b, c have concurrent
  // instances in the slice (+b', +c', -a') -> d e'.
  EXPECT_EQ(mr_cover(fx.unf, p5, fx.events).to_string(), "---10");
}

TEST(Refine, Fig4cRefiningSetIsParallelChain) {
  Fig4cFixture fx;
  const ConditionId p5 = condition_by_place(fx.unf, "p5");
  const auto refining = refining_set(fx.unf, SliceElement::of(p5), fx.slices.front());
  std::set<std::string> places;
  for (const ConditionId c : refining) {
    places.insert(fx.stg.net().place_name(fx.unf.place(c)));
  }
  EXPECT_EQ(places, (std::set<std::string>{"p2", "p4", "p7", "p9"}));
}

TEST(Refine, Fig4cRestrictedMrCovers) {
  Fig4cFixture fx;
  const ConditionId p5 = condition_by_place(fx.unf, "p5");
  const SliceElement x = SliceElement::of(p5);
  // Only +e' (the successor of p5 concurrent with the chain) is dashed; the
  // a, b, c literals keep their base-code values (paper: {1001-}, {1101-},
  // {1111-}, {0111-}).
  EXPECT_EQ(refinement_mr_cover(fx.unf, condition_by_place(fx.unf, "p2"), x, fx.events)
                .to_string(),
            "1001-");
  EXPECT_EQ(refinement_mr_cover(fx.unf, condition_by_place(fx.unf, "p4"), x, fx.events)
                .to_string(),
            "1101-");
  EXPECT_EQ(refinement_mr_cover(fx.unf, condition_by_place(fx.unf, "p7"), x, fx.events)
                .to_string(),
            "1111-");
  EXPECT_EQ(refinement_mr_cover(fx.unf, condition_by_place(fx.unf, "p9"), x, fx.events)
                .to_string(),
            "0111-");
}

TEST(Refine, Fig4cRefineAtomMatchesPaperResult) {
  Fig4cFixture fx;
  const ConditionId p5 = condition_by_place(fx.unf, "p5");

  ApproxCover owner;
  owner.signal = fx.d;
  owner.value = true;
  owner.slices = fx.slices;
  owner.slice_event_sets.push_back(fx.events);

  CoverAtom atom;
  atom.element = SliceElement::of(p5);
  atom.slice_index = 0;
  atom.cover = logic::Cover(fx.stg.signal_count());
  atom.cover.add(mr_cover(fx.unf, p5, fx.events));  // d e'

  ASSERT_TRUE(refine_atom(fx.unf, owner, atom, *fx.stg.find_signal("a")));

  // Paper: the refined cover is the exact MR of p5 = a c' d e' + b c d e',
  // i.e. the point set {10010, 11010, 11110, 01110}.
  EXPECT_EQ(cover_cubes(atom.cover),
            (std::set<std::string>{"10010", "11010", "11110", "01110"}));

  // Minimising against its exact complement reproduces the paper's two-term
  // form (4 + 4 literals).
  const logic::Cover minimized = logic::espresso(atom.cover, atom.cover.complement());
  EXPECT_EQ(minimized.cube_count(), 2u);
  EXPECT_EQ(minimized.literal_count(), 8u);
}

TEST(Refine, RefineAtomIsIdempotentOnExactCover) {
  Fig4cFixture fx;
  const ConditionId p5 = condition_by_place(fx.unf, "p5");
  ApproxCover owner;
  owner.signal = fx.d;
  owner.value = true;
  owner.slices = fx.slices;
  owner.slice_event_sets.push_back(fx.events);
  CoverAtom atom;
  atom.element = SliceElement::of(p5);
  atom.slice_index = 0;
  atom.cover = logic::Cover(fx.stg.signal_count());
  atom.cover.add(mr_cover(fx.unf, p5, fx.events));
  ASSERT_TRUE(refine_atom(fx.unf, owner, atom, *fx.stg.find_signal("a")));
  // A second refinement step can tighten no further.
  EXPECT_FALSE(refine_atom(fx.unf, owner, atom, *fx.stg.find_signal("b")));
}

TEST(Refine, RefineUntilDisjointSucceedsOnCleanExamples) {
  for (int which = 0; which < 3; ++which) {
    Stg stg;
    switch (which) {
      case 0: stg = stg::make_paper_fig1(); break;
      case 1: stg = stg::make_paper_fig4ab(); break;
      case 2: stg = stg::make_muller_pipeline(3); break;
    }
    const Unfolding unf = Unfolding::build(stg);
    for (const SignalId s : stg.non_input_signals()) {
      ApproxCover on = approximate_cover(unf, s, true);
      ApproxCover off = approximate_cover(unf, s, false);
      const RefineStats stats = refine_until_disjoint(unf, on, off);
      EXPECT_TRUE(stats.disjoint)
          << "refinement failed for " << stg.signal_name(s) << " in " << stg.name();
      EXPECT_FALSE(on.combined(stg.signal_count())
                       .intersects(off.combined(stg.signal_count())));
    }
  }
}

}  // namespace
}  // namespace punt::core
