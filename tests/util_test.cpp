// Unit tests for the util substrate: Bitset, binary I/O, JSON escaping,
// strings, xorshift.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "src/util/binio.hpp"
#include "src/util/bitset.hpp"
#include "src/util/error.hpp"
#include "src/util/hmac.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"
#include "src/util/xorshift.hpp"

namespace punt {
namespace {

TEST(Bitset, StartsEmpty) {
  Bitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.find_first(), Bitset::npos);
}

TEST(Bitset, SetTestReset) {
  Bitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, FindFirstAndNext) {
  Bitset b(200);
  b.set(3);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 3u);
  EXPECT_EQ(b.find_next(3), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), Bitset::npos);
}

TEST(Bitset, ForEachAscending) {
  Bitset b(70);
  b.set(69);
  b.set(0);
  b.set(33);
  EXPECT_EQ(b.to_indices(), (std::vector<std::size_t>{0, 33, 69}));
}

TEST(Bitset, BooleanOperators) {
  Bitset a(66), b(66);
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);
  Bitset i = a & b;
  EXPECT_EQ(i.to_indices(), (std::vector<std::size_t>{65}));
  Bitset u = a | b;
  EXPECT_EQ(u.to_indices(), (std::vector<std::size_t>{1, 2, 65}));
  Bitset d = a;
  d.subtract(b);
  EXPECT_EQ(d.to_indices(), (std::vector<std::size_t>{1}));
}

TEST(Bitset, SubsetAndIntersects) {
  Bitset a(10), b(10);
  a.set(3);
  b.set(3);
  b.set(7);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  Bitset c(10);
  c.set(1);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Bitset, ResizePreservesAndMasksTail) {
  Bitset b(64);
  b.set(63);
  b.resize(70);
  EXPECT_TRUE(b.test(63));
  EXPECT_EQ(b.count(), 1u);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  b.resize(3);
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, EqualityAndHash) {
  Bitset a(50), b(50);
  a.set(10);
  b.set(10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(11);
  EXPECT_FALSE(a == b);
}

TEST(Bitset, ToString) {
  Bitset b(8);
  b.set(1);
  b.set(4);
  EXPECT_EQ(b.to_string(), "{1, 4}");
}

TEST(Strings, SplitDropsEmptyTokens) {
  EXPECT_EQ(split("  a  bb\tc "), (std::vector<std::string>{"a", "bb", "c"}));
  EXPECT_TRUE(split("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with(".inputs a b", ".inputs"));
  EXPECT_FALSE(starts_with(".in", ".inputs"));
}

TEST(Strings, LogicalLinesJoinsContinuations) {
  const auto lines = logical_lines("a b \\\nc d\ne");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a b c d");
  EXPECT_EQ(lines[1], "e");
}

TEST(Strings, LogicalLinesStripsCarriageReturn) {
  const auto lines = logical_lines("a\r\nb\r");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
}

TEST(Bitset, WordsRoundTripThroughFromWords) {
  Bitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  const Bitset rebuilt = Bitset::from_words(b.size(), b.words());
  EXPECT_TRUE(rebuilt == b);

  // Size/word-count mismatches and stray tail bits are corruption, not data.
  EXPECT_THROW((void)Bitset::from_words(200, b.words()), ValidationError);
  std::vector<std::uint64_t> tail = b.words();
  tail.back() |= std::uint64_t{1} << 10;  // bit 138 > size 130
  EXPECT_THROW((void)Bitset::from_words(130, std::move(tail)), ValidationError);
}

TEST(BinIo, FieldsRoundTripExactly) {
  util::BinaryWriter out;
  out.u8(0xab);
  out.u32(0xdeadbeef);
  out.u64(0x0123456789abcdefull);
  out.f64(-1234.5678e-9);
  out.f64(std::numeric_limits<double>::infinity());
  out.str("hello \x1f world");
  out.str("");

  util::BinaryReader in(out.data());
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(in.f64(), -1234.5678e-9);
  EXPECT_EQ(in.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(in.str(), "hello \x1f world");
  EXPECT_EQ(in.str(), "");
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(BinIo, ReadsPastTheEndThrowParseError) {
  util::BinaryWriter out;
  out.u32(7);
  util::BinaryReader in(out.data());
  (void)in.u32();
  EXPECT_THROW((void)in.u8(), ParseError);

  // A length prefix overrunning the payload is truncation, not a crash.
  util::BinaryWriter bad;
  bad.u64(1000);  // claims a 1000-byte string, provides none
  util::BinaryReader str_in(bad.data());
  EXPECT_THROW((void)str_in.str(), ParseError);

  // count() bounds corrupt container lengths before any allocation.
  util::BinaryWriter huge;
  huge.u64(std::numeric_limits<std::uint64_t>::max());
  util::BinaryReader count_in(huge.data());
  EXPECT_THROW((void)count_in.count(1 << 20, "element"), ParseError);
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(util::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(util::json_escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(util::json_escape(std::string("nul\x01") + "byte"), "nul\\u0001byte");
  EXPECT_EQ(util::json_escape("unit\x1fsep"), "unit\\u001fsep");
}

TEST(Json, ParserHandlesTheSchemaShapes) {
  const util::JsonValue root = util::parse_json(
      R"({"s": "text", "n": 1.5, "b": true, "a": [1, 2], "o": {"k": "v"}})");
  ASSERT_EQ(root.type, util::JsonValue::Type::Object);
  EXPECT_EQ(util::json_string(root, "s", "doc"), "text");
  EXPECT_DOUBLE_EQ(util::json_number(root, "n", "doc"), 1.5);
  EXPECT_TRUE(util::json_bool(root, "b", "doc"));
  EXPECT_EQ(util::json_require(root, "a", util::JsonValue::Type::Array, "doc")
                .array.size(), 2u);
  EXPECT_THROW((void)util::json_string(root, "missing", "doc"), ParseError);
  EXPECT_THROW((void)util::json_count(root, "s", "doc"), ParseError);  // mistyped
}

TEST(Json, DeeplyNestedInputIsRejectedNotAStackOverflow) {
  // The serve protocol feeds this parser untrusted socket bytes; without a
  // depth bound a frame of a million '[' would overflow the stack and kill
  // the daemon.  The bound must reject far below that, and far above any
  // legitimate punt schema (which nests < 8 deep).
  const std::string hostile(1u << 20, '[');
  EXPECT_THROW((void)util::parse_json(hostile), ParseError);
  std::string nested_ok = "1";
  for (int i = 0; i < 8; ++i) nested_ok = "[" + nested_ok + "]";
  EXPECT_NO_THROW((void)util::parse_json(nested_ok));
}

TEST(Hmac, Sha256MatchesTheFipsVectors) {
  // FIPS 180-4 reference vectors: empty, one-block, and a message whose
  // padding spills into a second block (56 bytes: the hardest length).
  EXPECT_EQ(util::to_hex(util::sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(util::to_hex(util::sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      util::to_hex(util::sha256(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // A multi-block message (> 64 bytes) exercises the compression loop.
  EXPECT_EQ(util::to_hex(util::sha256(std::string(1000, 'a'))),
            util::to_hex(util::sha256(std::string(1000, 'a'))));
  EXPECT_NE(util::to_hex(util::sha256(std::string(1000, 'a'))),
            util::to_hex(util::sha256(std::string(1001, 'a'))));
}

TEST(Hmac, HmacSha256MatchesTheRfc4231Vectors) {
  // RFC 4231 test case 1: key = 0x0b * 20, data = "Hi There".
  EXPECT_EQ(util::to_hex(util::hmac_sha256(std::string(20, '\x0b'), "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // RFC 4231 test case 2: a key shorter than the block size.
  EXPECT_EQ(util::to_hex(util::hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // A key longer than the 64-byte block is pre-hashed (RFC 2104); the MAC
  // must equal the one computed with the hashed key spelled out.
  const std::string long_key(131, 'K');
  const auto direct = util::hmac_sha256(long_key, "message");
  const auto hashed = util::sha256(long_key);
  const std::string hashed_key(reinterpret_cast<const char*>(hashed.data()),
                               hashed.size());
  EXPECT_EQ(util::to_hex(direct), util::to_hex(util::hmac_sha256(hashed_key, "message")));
}

TEST(Hmac, ConstantTimeEqualComparesContentNotPrefix) {
  EXPECT_TRUE(util::constant_time_equal("", ""));
  EXPECT_TRUE(util::constant_time_equal("same-bytes", "same-bytes"));
  EXPECT_FALSE(util::constant_time_equal("same-bytes", "same-byteZ"));
  EXPECT_FALSE(util::constant_time_equal("short", "short-but-longer"));
  EXPECT_FALSE(util::constant_time_equal("a", "b"));
}

TEST(Hmac, RandomHexIsFreshAndWellFormed) {
  const std::string a = util::random_hex(32);
  const std::string b = util::random_hex(32);
  EXPECT_EQ(a.size(), 64u);  // two hex digits per byte
  EXPECT_EQ(a.find_first_not_of("0123456789abcdef"), std::string::npos) << a;
  EXPECT_NE(a, b) << "a 256-bit nonce must not repeat across draws";
  EXPECT_EQ(util::random_bytes(7).size(), 7u);
}

TEST(XorShift, DeterministicForFixedSeed) {
  XorShift a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(XorShift, BelowStaysInRange) {
  XorShift rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

}  // namespace
}  // namespace punt
