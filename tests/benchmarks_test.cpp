// Registry integration sweep: every Table-1 row must load, satisfy the
// general correctness criteria, synthesise under the unfolding flow, and
// (when its SG is tractable) produce a conforming circuit.
#include <gtest/gtest.h>

#include <set>

#include "src/benchmarks/registry.hpp"
#include "src/benchmarks/templates.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/g_format.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/error.hpp"

namespace punt::benchmarks {
namespace {

TEST(Templates, HandshakeChainShape) {
  const stg::Stg stg = handshake_chain("ring", 5);
  EXPECT_EQ(stg.signal_count(), 5u);
  EXPECT_TRUE(stg.net().is_marked_graph());
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  EXPECT_EQ(sgraph.state_count(), 10u);  // Johnson counter: 2k states
  EXPECT_TRUE(sg::has_unique_state_coding(sgraph));
}

TEST(Templates, ForkJoinShape) {
  const stg::Stg stg = fork_join("fj", {2, 3});
  EXPECT_EQ(stg.signal_count(), 6u);  // a + 5 chain signals
  EXPECT_TRUE(stg.net().is_marked_graph());
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  // Up phase: product of chain positions; plus the down phase.
  EXPECT_GT(sgraph.state_count(), 12u);
  EXPECT_TRUE(sg::csc_violations(stg, sgraph).empty());
}

TEST(Templates, ChoiceControllerShape) {
  const stg::Stg stg = choice_controller("cc", {2, 3});
  EXPECT_EQ(stg.signal_count(), 7u);  // 2 requests + 5 outputs
  EXPECT_FALSE(stg.net().is_marked_graph());
  EXPECT_TRUE(stg.net().is_free_choice());
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  EXPECT_TRUE(sg::persistency_violations(stg, sgraph).empty());
  EXPECT_TRUE(sg::csc_violations(stg, sgraph).empty());
}

TEST(Registry, HasAll21Table1Rows) {
  EXPECT_EQ(table1().size(), 21u);
  std::size_t total_signals = 0;
  for (const Benchmark& b : table1()) total_signals += b.signals;
  EXPECT_EQ(total_signals, 228u);  // the paper's "Total 228" row
}

TEST(Registry, FindByName) {
  EXPECT_EQ(find("sendr-done").signals, 4u);
  EXPECT_THROW(find("nope"), Error);
}

TEST(Registry, SignalCountsMatchPaperColumn) {
  for (const Benchmark& b : table1()) {
    const stg::Stg stg = b.make();
    EXPECT_EQ(stg.signal_count(), b.signals) << b.name;
  }
}

TEST(Registry, EveryRowRoundTripsThroughGFormat) {
  for (const Benchmark& b : table1()) {
    const stg::Stg original = b.make();
    const stg::Stg reparsed = stg::parse_g(stg::write_g(original));
    EXPECT_EQ(reparsed.signal_count(), original.signal_count()) << b.name;
    EXPECT_EQ(reparsed.net().transition_count(), original.net().transition_count())
        << b.name;
  }
}

/// Each row: general correctness criteria hold on the segment.
class RegistryRow : public ::testing::TestWithParam<int> {};

TEST_P(RegistryRow, SatisfiesGeneralCorrectnessCriteria) {
  const Benchmark& b = table1()[static_cast<std::size_t>(GetParam())];
  const stg::Stg stg = b.make();
  const unf::Unfolding unfolding = unf::Unfolding::build(stg);  // consistent + safe
  EXPECT_TRUE(segment_persistency_violations(unfolding).empty()) << b.name;
}

TEST_P(RegistryRow, SynthesisesUnderTheUnfoldingFlow) {
  const Benchmark& b = table1()[static_cast<std::size_t>(GetParam())];
  const stg::Stg stg = b.make();
  core::SynthesisOptions options;
  options.method = core::Method::UnfoldingApprox;
  const core::SynthesisResult result = core::synthesize(stg, options);
  EXPECT_EQ(result.signals.size(), stg.non_input_signals().size()) << b.name;
  EXPECT_GT(result.literal_count(), 0u) << b.name;
  for (const auto& impl : result.signals) {
    EXPECT_FALSE(impl.csc_conflict) << b.name;
  }
}

TEST_P(RegistryRow, CircuitConformsToTheStateGraph) {
  const Benchmark& b = table1()[static_cast<std::size_t>(GetParam())];
  const stg::Stg stg = b.make();
  core::SynthesisOptions options;
  options.method = core::Method::UnfoldingApprox;
  const core::SynthesisResult result = core::synthesize(stg, options);
  const net::Netlist netlist = net::Netlist::from_synthesis(stg, result);
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  const auto violations = net::verify_conformance(sgraph, netlist);
  EXPECT_TRUE(violations.empty())
      << b.name << ": " << (violations.empty() ? "" : violations.front().detail);
}

INSTANTIATE_TEST_SUITE_P(AllRows, RegistryRow, ::testing::Range(0, 21));

}  // namespace
}  // namespace punt::benchmarks
