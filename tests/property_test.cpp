// Randomised property suite: seeded generators produce families of valid
// STGs (fork-joins, choice controllers, rings, pipelines with randomly
// chosen shapes), and the core invariants of the reproduction are checked
// on every instance:
//
//   P1  completeness — cut markings of the segment == SG markings;
//   P2  exactness    — unfolding exact covers == SG covers (on/off/ER);
//   P3  soundness    — approximated covers contain the exact sets;
//   P4  convergence  — refinement reaches disjoint covers, or the exact
//                      fallback does (these families are CSC-clean);
//   P5  conformance  — the synthesised circuit matches every SG state.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/benchmarks/templates.hpp"
#include "src/core/approx.hpp"
#include "src/core/slices.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/xorshift.hpp"

namespace punt {
namespace {

/// Deterministically derives a random-but-valid STG from a seed.
stg::Stg random_stg(std::uint64_t seed) {
  XorShift rng(seed * 2654435761u + 17);
  switch (rng.below(4)) {
    case 0: {  // fork-join with 2..4 chains of depth 1..3
      std::vector<std::size_t> depths(2 + rng.below(3));
      for (auto& d : depths) d = 1 + rng.below(3);
      return benchmarks::fork_join("rand_fj" + std::to_string(seed), depths);
    }
    case 1: {  // choice controller with 2..3 branches of length 1..4
      std::vector<std::size_t> lengths(2 + rng.below(2));
      for (auto& l : lengths) l = 1 + rng.below(4);
      return benchmarks::choice_controller("rand_cc" + std::to_string(seed), lengths);
    }
    case 2:  // handshake ring with 3..8 signals
      return benchmarks::handshake_chain("rand_hs" + std::to_string(seed),
                                         3 + rng.below(6));
    default:  // Muller pipeline with 2..5 stages
      return stg::make_muller_pipeline(2 + rng.below(4));
  }
}

std::set<std::string> cover_cubes(logic::Cover cover) {
  cover.normalize();
  std::set<std::string> out;
  for (const auto& cube : cover.cubes()) out.insert(cube.to_string());
  return out;
}

class RandomStg : public ::testing::TestWithParam<int> {};

TEST_P(RandomStg, P1_SegmentRepresentsExactlyTheReachableMarkings) {
  const stg::Stg stg = random_stg(static_cast<std::uint64_t>(GetParam()));
  const auto unf = unf::Unfolding::build(stg);
  const auto sgraph = sg::StateGraph::build(stg);
  std::set<std::string> sg_markings, cut_markings;
  for (std::size_t s = 0; s < sgraph.state_count(); ++s) {
    sg_markings.insert(sgraph.marking(s).to_string(stg.net().place_names()));
  }
  for (const auto& m : unf::reachable_cut_markings(unf)) {
    cut_markings.insert(m.to_string(stg.net().place_names()));
  }
  EXPECT_EQ(cut_markings, sg_markings) << stg.name();
}

TEST_P(RandomStg, P2_ExactCoversEqualStateGraphCovers) {
  const stg::Stg stg = random_stg(static_cast<std::uint64_t>(GetParam()));
  const auto unf = unf::Unfolding::build(stg);
  const auto sgraph = sg::StateGraph::build(stg);
  for (std::size_t si = 0; si < stg.signal_count(); ++si) {
    const stg::SignalId s(static_cast<std::uint32_t>(si));
    EXPECT_EQ(cover_cubes(core::exact_cover(unf, s, true)),
              cover_cubes(sg::on_cover(sgraph, s)))
        << stg.name() << " / " << stg.signal_name(s);
    EXPECT_EQ(cover_cubes(core::exact_cover(unf, s, false)),
              cover_cubes(sg::off_cover(sgraph, s)))
        << stg.name() << " / " << stg.signal_name(s);
    EXPECT_EQ(cover_cubes(core::exact_er_cover(unf, s, true)),
              cover_cubes(sg::er_cover(stg, sgraph, s, true)))
        << stg.name() << " / " << stg.signal_name(s);
  }
}

TEST_P(RandomStg, P3_ApproximationsContainTheExactSets) {
  const stg::Stg stg = random_stg(static_cast<std::uint64_t>(GetParam()));
  const auto unf = unf::Unfolding::build(stg);
  const auto sgraph = sg::StateGraph::build(stg);
  for (const core::ApproxSetPolicy policy :
       {core::ApproxSetPolicy::Full, core::ApproxSetPolicy::PaperChains}) {
    for (std::size_t si = 0; si < stg.signal_count(); ++si) {
      const stg::SignalId s(static_cast<std::uint32_t>(si));
      for (const bool value : {true, false}) {
        const logic::Cover approx =
            core::approximate_cover(unf, s, value, policy).combined(stg.signal_count());
        const logic::Cover exact =
            value ? sg::on_cover(sgraph, s) : sg::off_cover(sgraph, s);
        EXPECT_TRUE(approx.contains_cover(exact))
            << stg.name() << " / " << stg.signal_name(s) << " value=" << value
            << " policy=" << int(policy);
      }
    }
  }
}

TEST_P(RandomStg, P4_RefinementConvergesOrFallsBack) {
  const stg::Stg stg = random_stg(static_cast<std::uint64_t>(GetParam()));
  core::SynthesisOptions options;
  options.method = core::Method::UnfoldingApprox;
  const auto result = core::synthesize(stg, options);  // throws on CSC: none expected
  for (const auto& impl : result.signals) {
    EXPECT_FALSE(impl.csc_conflict) << stg.name();
    EXPECT_FALSE(impl.on_cover.intersects(impl.off_cover)) << stg.name();
  }
}

TEST_P(RandomStg, P5_SynthesisedCircuitConforms) {
  const stg::Stg stg = random_stg(static_cast<std::uint64_t>(GetParam()));
  for (const core::Architecture arch :
       {core::Architecture::ComplexGate, core::Architecture::StandardC}) {
    core::SynthesisOptions options;
    options.architecture = arch;
    const auto result = core::synthesize(stg, options);
    const net::Netlist netlist = net::Netlist::from_synthesis(stg, result);
    const auto sgraph = sg::StateGraph::build(stg);
    const auto violations = net::verify_conformance(sgraph, netlist);
    EXPECT_TRUE(violations.empty())
        << stg.name() << ": "
        << (violations.empty() ? "" : violations.front().detail);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStg, ::testing::Range(0, 30));

}  // namespace
}  // namespace punt
