// Tests for the shared Table-1 report helper: shard parsing/partitioning,
// report construction from a real batch, JSON round-trips, and the merge
// step's exact-coverage validation (overlap / missing / unknown rows).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/benchmarks/report.hpp"
#include "src/core/pipeline.hpp"
#include "src/util/error.hpp"

namespace punt::benchmarks {
namespace {

/// A deterministic synthetic report over the full registry (timings and
/// literals derived from the position, so merged output is comparable).
Table1Report synthetic_full_report() {
  const auto& registry = table1();
  Table1Report report;
  report.shard = Shard{0, 1};
  report.registry_size = registry.size();
  report.jobs = 3;
  report.wall_seconds = 1.5;
  for (std::size_t p = 0; p < registry.size(); ++p) {
    Table1Row row;
    row.name = registry[p].name;
    row.signals = registry[p].signals;
    row.ok = true;
    row.unfold_seconds = 0.001 * static_cast<double>(p);
    row.derive_seconds = 0.01 * static_cast<double>(p);
    row.minimize_seconds = 0.1 * static_cast<double>(p);
    row.total_seconds = 0.111 * static_cast<double>(p);
    row.literals = 10 + p;
    row.exact_fallbacks = p % 2;
    row.paper_total_seconds = registry[p].paper_total_time;
    row.paper_literals = registry[p].paper_literals;
    report.rows.push_back(row);
  }
  return report;
}

/// Splits a full report into `count` shard reports exactly the way
/// `punt bench run --shard=i/count` would produce them.
std::vector<Table1Report> split(const Table1Report& full, std::size_t count) {
  std::vector<Table1Report> shards(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards[i].shard = Shard{i, count};
    shards[i].registry_size = full.registry_size;
    shards[i].jobs = full.jobs;
    shards[i].wall_seconds = full.wall_seconds / static_cast<double>(count);
    for (std::size_t p = 0; p < full.rows.size(); ++p) {
      if (shard_contains(shards[i].shard, p)) shards[i].rows.push_back(full.rows[p]);
    }
  }
  return shards;
}

TEST(Report, ParseShardAcceptsValidSpecs) {
  const Shard first = parse_shard("0/4");
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(first.count, 4u);
  const Shard last = parse_shard("3/4");
  EXPECT_EQ(last.index, 3u);
  EXPECT_EQ(last.count, 4u);
  const Shard whole = parse_shard("0/1");
  EXPECT_EQ(whole.count, 1u);
}

TEST(Report, ParseShardRejectsMalformedSpecs) {
  // Same diagnostic style as --jobs: a punt::Error naming the value and the
  // expected shape.
  for (const char* bad : {"", "3", "abc", "a/4", "1/b", "1/", "/4", "-1/4", "1/-4",
                          "1.5/4", "0/0", "4/4", "5/4"}) {
    try {
      (void)parse_shard(bad);
      FAIL() << "expected punt::Error for --shard=" << bad;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("--shard"), std::string::npos)
          << "diagnostic for '" << bad << "' should name the flag: " << e.what();
    }
  }
}

TEST(Report, ShardPositionsPartitionTheRegistryExactly) {
  const std::size_t registry_size = table1().size();
  for (const std::size_t count : {1u, 2u, 3u, 4u, 7u, 21u, 40u}) {
    std::set<std::size_t> seen;
    for (std::size_t index = 0; index < count; ++index) {
      const Shard shard{index, count};
      for (const std::size_t p : shard_positions(shard, registry_size)) {
        EXPECT_TRUE(shard_contains(shard, p));
        EXPECT_TRUE(seen.insert(p).second)
            << "position " << p << " appears in two shards of " << count;
      }
    }
    EXPECT_EQ(seen.size(), registry_size) << "shards of " << count << " miss entries";
  }
}

TEST(Report, MakeReportCarriesBatchAndPaperColumns) {
  // Shard 0/7 selects registry positions 0, 7, 14 — three real syntheses.
  const auto& registry = table1();
  const Shard shard{0, 7};
  const std::vector<std::size_t> positions = shard_positions(shard, registry.size());
  std::vector<punt::stg::Stg> stgs;
  for (const std::size_t p : positions) stgs.push_back(registry[p].make());

  core::BatchOptions options;
  options.synthesis.throw_on_csc = false;
  const core::BatchResult batch = core::synthesize_batch(stgs, options);
  const Table1Report report = make_report(shard, batch);

  ASSERT_EQ(report.rows.size(), positions.size());
  EXPECT_EQ(report.registry_size, registry.size());
  for (std::size_t k = 0; k < positions.size(); ++k) {
    const Benchmark& bench = registry[positions[k]];
    EXPECT_EQ(report.rows[k].name, bench.name);
    EXPECT_EQ(report.rows[k].signals, bench.signals);
    EXPECT_EQ(report.rows[k].paper_literals, bench.paper_literals);
    EXPECT_DOUBLE_EQ(report.rows[k].paper_total_seconds, bench.paper_total_time);
    ASSERT_TRUE(report.rows[k].ok) << report.rows[k].error;
    EXPECT_EQ(report.rows[k].literals, batch.entries[k].result.literal_count());
  }
  EXPECT_EQ(report.failures(), 0u);

  // A batch of the wrong size cannot be attributed to the shard.
  core::BatchResult wrong = batch;
  wrong.entries.pop_back();
  EXPECT_THROW((void)make_report(shard, wrong), ValidationError);
}

TEST(Report, JsonRoundTripPreservesEveryField) {
  Table1Report report = synthetic_full_report();
  // Exercise escaping: quotes, backslashes, newlines and a control byte in
  // the error text of a failed row.
  report.rows[2].ok = false;
  report.rows[2].error = "signal 'x' said \"no\"\n\tpath: a\\b\x01";
  report.rows[2].literals = 0;
  // A long diagnostic (capacity errors enumerate budgets and transitions)
  // must survive serialisation intact, not be truncated into invalid JSON.
  report.rows[3].ok = false;
  report.rows[3].error = "the segment blew the event budget: " +
                         std::string(2000, 'e') + " (end of diagnostic)";

  const Table1Report parsed = report_from_json(to_json(report));
  EXPECT_EQ(parsed.shard.index, report.shard.index);
  EXPECT_EQ(parsed.shard.count, report.shard.count);
  EXPECT_EQ(parsed.registry_size, report.registry_size);
  EXPECT_EQ(parsed.jobs, report.jobs);
  EXPECT_DOUBLE_EQ(parsed.wall_seconds, report.wall_seconds);
  ASSERT_EQ(parsed.rows.size(), report.rows.size());
  for (std::size_t p = 0; p < report.rows.size(); ++p) {
    const Table1Row& a = report.rows[p];
    const Table1Row& b = parsed.rows[p];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.signals, b.signals);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_DOUBLE_EQ(a.unfold_seconds, b.unfold_seconds);
    EXPECT_DOUBLE_EQ(a.derive_seconds, b.derive_seconds);
    EXPECT_DOUBLE_EQ(a.minimize_seconds, b.minimize_seconds);
    EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
    EXPECT_EQ(a.literals, b.literals);
    EXPECT_EQ(a.exact_fallbacks, b.exact_fallbacks);
    EXPECT_DOUBLE_EQ(a.paper_total_seconds, b.paper_total_seconds);
    EXPECT_EQ(a.paper_literals, b.paper_literals);
  }
  // The formatted tables agree byte for byte.
  EXPECT_EQ(format_table1(report), format_table1(parsed));
}

TEST(Report, FromJsonRejectsForeignPayloads) {
  EXPECT_THROW((void)report_from_json("not json at all"), ParseError);
  EXPECT_THROW((void)report_from_json("{\"schema\": \"something-else\"}"), ParseError);
  EXPECT_THROW((void)report_from_json("[1, 2, 3]"), ParseError);
  EXPECT_THROW((void)report_from_json(
                   "{\"schema\": \"punt-table1-report\", \"version\": 2}"),
               ParseError);
  // Truncated output (an interrupted shard upload) must be diagnosed, not
  // half-parsed.
  const std::string full = to_json(synthetic_full_report());
  EXPECT_THROW((void)report_from_json(
                   std::string_view(full).substr(0, full.size() / 2)),
               ParseError);
}

TEST(Report, MergeReproducesTheUnshardedTableExactly) {
  const Table1Report full = synthetic_full_report();
  for (const std::size_t count : {2u, 4u, 5u}) {
    // Round-trip every shard through JSON, as the CI artifact flow does.
    std::vector<Table1Report> shards;
    for (const Table1Report& shard : split(full, count)) {
      shards.push_back(report_from_json(to_json(shard)));
    }
    const Table1Report merged = merge_reports(shards);
    ASSERT_EQ(merged.rows.size(), full.rows.size());
    for (std::size_t p = 0; p < full.rows.size(); ++p) {
      EXPECT_EQ(merged.rows[p].name, full.rows[p].name) << "row order must be "
                                                        << "registry order";
    }
    EXPECT_EQ(format_table1(merged), format_table1(full))
        << count << "-way merge must reproduce the unsharded table";
    EXPECT_EQ(merged.literal_count(), full.literal_count());
  }
}

TEST(Report, MergeRejectsOverlapMissingAndUnknownRows) {
  const Table1Report full = synthetic_full_report();
  std::vector<Table1Report> shards = split(full, 4);

  // Overlap: the same benchmark delivered by two shard reports.
  {
    std::vector<Table1Report> overlapping = shards;
    overlapping[1].rows.push_back(shards[0].rows[0]);
    try {
      (void)merge_reports(overlapping);
      FAIL() << "expected ValidationError for overlapping shards";
    } catch (const ValidationError& e) {
      EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos) << e.what();
    }
  }
  // Missing: one shard report lost.
  {
    std::vector<Table1Report> missing(shards.begin(), shards.end() - 1);
    try {
      (void)merge_reports(missing);
      FAIL() << "expected ValidationError for missing entries";
    } catch (const ValidationError& e) {
      EXPECT_NE(std::string(e.what()).find("no shard report covers"), std::string::npos)
          << e.what();
    }
  }
  // Unknown benchmark: a report from some other registry.
  {
    std::vector<Table1Report> unknown = shards;
    unknown[0].rows[0].name = "not-a-registry-entry";
    EXPECT_THROW((void)merge_reports(unknown), ValidationError);
  }
  // Registry size mismatch: stale shard reports must be regenerated.
  {
    std::vector<Table1Report> stale = shards;
    stale[2].registry_size = full.registry_size + 1;
    EXPECT_THROW((void)merge_reports(stale), ValidationError);
  }
  EXPECT_THROW((void)merge_reports({}), ValidationError);
}

TEST(Report, WeightedShardsPartitionTheRegistryExactly) {
  // Whatever the weight profile, the n weighted shard runs must cover the
  // registry exactly once — the contract `punt bench merge` enforces.
  Table1Report weights = synthetic_full_report();
  weights.rows[4].ok = false;  // failed rows weigh the mean, they still partition
  weights.rows[4].error = "CSC conflict";
  const std::size_t registry_size = table1().size();
  for (const std::size_t count : {1u, 2u, 3u, 4u, 7u}) {
    std::set<std::size_t> seen;
    for (std::size_t index = 0; index < count; ++index) {
      const std::vector<std::size_t> positions =
          weighted_shard_positions(Shard{index, count}, weights);
      EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
      for (const std::size_t p : positions) {
        EXPECT_LT(p, registry_size);
        EXPECT_TRUE(seen.insert(p).second)
            << "position " << p << " appears in two weighted shards of " << count;
      }
    }
    EXPECT_EQ(seen.size(), registry_size)
        << "weighted shards of " << count << " miss entries";
  }
}

TEST(Report, WeightedShardsBalanceSkewedCosts) {
  // One entry dominating the suite: LPT puts it alone on a shard while the
  // positional rule would pair it with a quarter of the registry.  With
  // per-entry TotTim of (position 0 → 100s, rest → 1s) and 4 shards, the
  // heaviest shard carries 100s and the others ≈ (n-1)/3 s each.
  Table1Report weights = synthetic_full_report();
  for (std::size_t p = 0; p < weights.rows.size(); ++p) {
    weights.rows[p].total_seconds = p == 0 ? 100.0 : 1.0;
  }
  const std::size_t count = 4;
  double max_load = 0;
  std::vector<std::size_t> heavy_shard_positions;
  for (std::size_t index = 0; index < count; ++index) {
    const std::vector<std::size_t> positions =
        weighted_shard_positions(Shard{index, count}, weights);
    double load = 0;
    for (const std::size_t p : positions) load += weights.rows[p].total_seconds;
    max_load = std::max(max_load, load);
    if (std::find(positions.begin(), positions.end(), 0u) != positions.end()) {
      heavy_shard_positions = positions;
    }
  }
  // The dominant entry sits alone on its shard, and no shard's load exceeds
  // the dominant entry's own weight (the LPT optimum here).
  ASSERT_EQ(heavy_shard_positions, std::vector<std::size_t>{0});
  EXPECT_DOUBLE_EQ(max_load, 100.0);
}

TEST(Report, WeightedShardsSpreadFailedRowsByMeanWeight) {
  // Regression: failed rows used to weigh 0.0, so after the successful rows
  // were placed, every failed entry chased the (then fixed) least-loaded
  // shard and piled onto it as free riders — four failures, one unlucky
  // shard re-attempting all of them.  A failed row now weighs the mean
  // successful-row weight, so LPT spreads failures like ordinary entries.
  Table1Report weights = synthetic_full_report();
  for (Table1Row& row : weights.rows) row.total_seconds = 10.0;
  for (std::size_t p = 1; p <= 4; ++p) {
    weights.rows[p].ok = false;
    weights.rows[p].error = "CSC conflict";
    weights.rows[p].total_seconds = 0.0;  // meaningless, as punt reports it
  }

  const std::size_t count = 4;
  std::size_t max_failed_on_one_shard = 0;
  for (std::size_t index = 0; index < count; ++index) {
    const std::vector<std::size_t> positions =
        weighted_shard_positions(Shard{index, count}, weights);
    std::size_t failed_here = 0;
    for (const std::size_t p : positions) {
      if (p >= 1 && p <= 4) ++failed_here;
    }
    max_failed_on_one_shard = std::max(max_failed_on_one_shard, failed_here);
  }
  // With uniform successful weights the mean equals them, so the four failed
  // entries land one per shard (the zero-weight bug put all four on one).
  EXPECT_EQ(max_failed_on_one_shard, 1u);

  // Degenerate case: every row failed.  The fallback must be a *positive*
  // equal weight — with zero weights the greedy loop would never change a
  // load and every entry would land on shard 0 — so the partition is exact
  // AND evenly sized (LPT deals equal weights round-robin).
  Table1Report all_failed = synthetic_full_report();
  for (Table1Row& row : all_failed.rows) {
    row.ok = false;
    row.error = "capacity";
  }
  std::set<std::size_t> seen;
  const std::size_t even_share = (table1().size() + count - 1) / count;
  for (std::size_t index = 0; index < count; ++index) {
    const std::vector<std::size_t> positions =
        weighted_shard_positions(Shard{index, count}, all_failed);
    EXPECT_LE(positions.size(), even_share) << "shard " << index << " is overloaded";
    EXPECT_GE(positions.size(), table1().size() / count - 1)
        << "shard " << index << " is starved";
    for (const std::size_t p : positions) {
      EXPECT_TRUE(seen.insert(p).second);
    }
  }
  EXPECT_EQ(seen.size(), table1().size());
}

TEST(Report, WeightedShardsAreDeterministicUnderUniformWeights) {
  // All-equal weights exercise both tie-breaks (weight ties → position
  // order; load ties → lowest shard index).  Two invocations must agree,
  // and the assignment must be a pure function of the report.
  Table1Report weights = synthetic_full_report();
  for (Table1Row& row : weights.rows) row.total_seconds = 2.0;
  for (std::size_t index = 0; index < 3; ++index) {
    const auto a = weighted_shard_positions(Shard{index, 3}, weights);
    const auto b = weighted_shard_positions(Shard{index, 3}, weights);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
  }
}

TEST(Report, WeightedShardsRejectIncompleteWeights) {
  // Missing registry entry.
  {
    Table1Report weights = synthetic_full_report();
    weights.rows.erase(weights.rows.begin() + 2);
    try {
      (void)weighted_shard_positions(Shard{0, 4}, weights);
      FAIL() << "expected ValidationError for a missing row";
    } catch (const ValidationError& e) {
      EXPECT_NE(std::string(e.what()).find("no row for"), std::string::npos) << e.what();
    }
  }
  // Unknown benchmark name.
  {
    Table1Report weights = synthetic_full_report();
    weights.rows[1].name = "not-a-registry-entry";
    EXPECT_THROW((void)weighted_shard_positions(Shard{0, 4}, weights), ValidationError);
  }
  // Stale registry size.
  {
    Table1Report weights = synthetic_full_report();
    weights.registry_size += 1;
    EXPECT_THROW((void)weighted_shard_positions(Shard{0, 4}, weights), ValidationError);
  }
  // Duplicate rows (e.g. a hand-concatenated report): ambiguous weights
  // must be rejected, not resolved by whichever row comes last.
  {
    Table1Report weights = synthetic_full_report();
    weights.rows.push_back(weights.rows[3]);
    try {
      (void)weighted_shard_positions(Shard{0, 4}, weights);
      FAIL() << "expected ValidationError for a duplicate row";
    } catch (const ValidationError& e) {
      EXPECT_NE(std::string(e.what()).find("twice"), std::string::npos) << e.what();
    }
  }
}

TEST(Report, MakeReportAcceptsExplicitWeightedPositions) {
  // Run a real (tiny) weighted shard end to end: build the batch for the
  // positions LPT assigns to shard 1/7 and attribute rows through the
  // explicit-positions overload.
  Table1Report weights = synthetic_full_report();
  const Shard shard{1, 7};
  const std::vector<std::size_t> positions = weighted_shard_positions(shard, weights);
  ASSERT_FALSE(positions.empty());
  const auto& registry = table1();
  std::vector<punt::stg::Stg> stgs;
  for (const std::size_t p : positions) stgs.push_back(registry[p].make());
  core::BatchOptions options;
  options.synthesis.throw_on_csc = false;
  const core::BatchResult batch = core::synthesize_batch(stgs, options);
  const Table1Report report = make_report(shard, positions, batch);
  ASSERT_EQ(report.rows.size(), positions.size());
  for (std::size_t k = 0; k < positions.size(); ++k) {
    EXPECT_EQ(report.rows[k].name, registry[positions[k]].name);
  }
  // Out-of-range positions are rejected.
  EXPECT_THROW((void)make_report(shard, {registry.size()}, batch), ValidationError);
}

TEST(Report, FormatShowsPaperColumnsAndErrors) {
  Table1Report report = synthetic_full_report();
  report.rows[0].ok = false;
  report.rows[0].error = "CapacityError: segment blew the event budget";
  const std::string table = format_table1(report);
  EXPECT_NE(table.find("paperTot"), std::string::npos);
  EXPECT_NE(table.find("papLit"), std::string::npos);
  EXPECT_NE(table.find("CapacityError"), std::string::npos);
  EXPECT_NE(table.find("failures 1"), std::string::npos);
  // Every registry entry has a row, failed or not.
  for (const auto& bench : table1()) {
    EXPECT_NE(table.find(bench.name), std::string::npos) << bench.name;
  }
}

TEST(Report, ServeBenchJsonRoundTripPreservesEveryField) {
  ServeBenchReport report;
  report.transport = "tcp";
  report.clients = 8;
  report.duration_seconds = 5;
  report.wall_seconds = 5.25;
  report.completed = 123;
  report.failed = 2;
  report.shed = 3;
  report.transport_errors = 1;
  report.throughput_rps = 23.4;
  report.mean_ms = 41.5;
  report.p50_ms = 30.25;
  report.p95_ms = 120.5;
  report.p99_ms = 250.75;
  report.max_ms = 612.0;
  report.batch_window_ms = 2;
  report.batches = 17;
  report.fused_requests = 119;
  report.max_batch = 8;
  report.queue_high_water = 9;
  report.daemon_shed = 3;
  report.batch_size_histogram = {1, 0, 4, 0, 0, 0, 0, 12, 0, 0, 0, 0, 0, 0, 0, 0};

  const ServeBenchReport parsed = serve_report_from_json(to_json(report));
  EXPECT_EQ(parsed.transport, "tcp");
  EXPECT_EQ(parsed.clients, report.clients);
  EXPECT_DOUBLE_EQ(parsed.duration_seconds, report.duration_seconds);
  EXPECT_DOUBLE_EQ(parsed.wall_seconds, report.wall_seconds);
  EXPECT_EQ(parsed.completed, report.completed);
  EXPECT_EQ(parsed.failed, report.failed);
  EXPECT_EQ(parsed.shed, report.shed);
  EXPECT_EQ(parsed.transport_errors, report.transport_errors);
  EXPECT_DOUBLE_EQ(parsed.throughput_rps, report.throughput_rps);
  EXPECT_DOUBLE_EQ(parsed.mean_ms, report.mean_ms);
  EXPECT_DOUBLE_EQ(parsed.p50_ms, report.p50_ms);
  EXPECT_DOUBLE_EQ(parsed.p95_ms, report.p95_ms);
  EXPECT_DOUBLE_EQ(parsed.p99_ms, report.p99_ms);
  EXPECT_DOUBLE_EQ(parsed.max_ms, report.max_ms);
  EXPECT_DOUBLE_EQ(parsed.batch_window_ms, report.batch_window_ms);
  EXPECT_EQ(parsed.batches, report.batches);
  EXPECT_EQ(parsed.fused_requests, report.fused_requests);
  EXPECT_EQ(parsed.max_batch, report.max_batch);
  EXPECT_EQ(parsed.queue_high_water, report.queue_high_water);
  EXPECT_EQ(parsed.daemon_shed, report.daemon_shed);
  EXPECT_EQ(parsed.batch_size_histogram, report.batch_size_histogram);
  EXPECT_DOUBLE_EQ(parsed.mean_batch(), report.mean_batch());

  // The human summary exposes the CI-greppable shed counter (client-side
  // plus daemon-side) and the nonzero histogram buckets.
  const std::string summary = format_serve_summary(report);
  EXPECT_NE(summary.find("shed=6"), std::string::npos) << summary;
  EXPECT_NE(summary.find("8:12"), std::string::npos) << summary;
  EXPECT_NE(summary.find("tcp transport"), std::string::npos) << summary;
}

TEST(Report, ServeBenchWithoutATransportFieldParsesAsUnix) {
  // Artifacts produced before the TCP transport carry no "transport" key;
  // they must keep parsing (version 1 is additive) and default to "unix".
  ServeBenchReport report;
  report.clients = 2;
  report.duration_seconds = 1;
  report.wall_seconds = 1;
  report.completed = 10;
  report.throughput_rps = 10;
  std::string json = to_json(report);
  const std::string field = "\"transport\": \"unix\",\n";
  const std::size_t at = json.find(field);
  ASSERT_NE(at, std::string::npos) << json;
  json.erase(at, field.size());
  const ServeBenchReport parsed = serve_report_from_json(json);
  EXPECT_EQ(parsed.transport, "unix");
  EXPECT_EQ(parsed.completed, 10u);
}

TEST(Report, ServeBenchFromJsonRejectsForeignPayloads) {
  EXPECT_THROW((void)serve_report_from_json("not json"), ParseError);
  EXPECT_THROW((void)serve_report_from_json(R"({"schema": "other", "version": 1})"),
               ParseError);
  EXPECT_THROW(
      (void)serve_report_from_json(R"({"schema": "punt-serve-bench", "version": 2})"),
      ParseError);
  // A Table-1 report is a valid punt JSON document but the wrong schema.
  Table1Report table;
  table.registry_size = table1().size();
  EXPECT_THROW((void)serve_report_from_json(to_json(table)), ParseError);
}

}  // namespace
}  // namespace punt::benchmarks
