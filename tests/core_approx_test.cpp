// Cover approximation (paper §4.2).  Reference: the Fig. 4(a)/(b) worked
// example — C*e(+d') = a d' g', C*mr(p4) = a d' g', C*mr(p7) = a d g',
// C(p10) = a d f' g + a d e' g, and the full on-set approximation of a.
#include <gtest/gtest.h>

#include <set>

#include "src/core/approx.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"

namespace punt::core {
namespace {

using stg::SignalId;
using stg::Stg;
using unf::ConditionId;
using unf::EventId;
using unf::Unfolding;

EventId event_by_name(const Unfolding& unf, const std::string& name) {
  for (std::size_t i = 1; i < unf.event_count(); ++i) {
    const EventId e(static_cast<std::uint32_t>(i));
    if (unf.stg().transition_name(unf.transition(e)) == name) return e;
  }
  ADD_FAILURE() << "no instance of " << name;
  return EventId();
}

ConditionId condition_by_place(const Unfolding& unf, const std::string& place) {
  for (std::size_t i = 0; i < unf.condition_count(); ++i) {
    const ConditionId c(static_cast<std::uint32_t>(i));
    if (unf.stg().net().place_name(unf.place(c)) == place) return c;
  }
  ADD_FAILURE() << "no condition for place " << place;
  return ConditionId();
}

std::set<std::string> cover_cubes(logic::Cover cover) {
  cover.normalize();
  std::set<std::string> out;
  for (const auto& cube : cover.cubes()) out.insert(cube.to_string());
  return out;
}

/// Slice of signal a's on-set in Fig. 4(b): entry +a', bound -a'.
struct Fig4Fixture {
  Stg stg = stg::make_paper_fig4ab();
  Unfolding unf = Unfolding::build(stg);
  SignalId a = *stg.find_signal("a");
  std::vector<Slice> slices = signal_slices(unf, a, true);
  std::vector<EventId> events;

  Fig4Fixture() {
    EXPECT_EQ(slices.size(), 1u);
    events = slice_events(unf, slices.front());
  }
};

TEST(Approx, Fig4ExcitationCoverOfDPlus) {
  Fig4Fixture fx;
  const EventId d_up = event_by_name(fx.unf, "d+");
  // Signal order a..g: a=1, d=0, g=0, rest don't-care.
  EXPECT_EQ(excitation_cover(fx.unf, d_up).to_string(), "1--0--0");
}

TEST(Approx, Fig4ExcitationCoverOfAPlusIsMinterm) {
  Fig4Fixture fx;
  const EventId a_up = event_by_name(fx.unf, "a+");
  // Nothing is concurrent with +a': the single ER state 0000000.
  EXPECT_EQ(excitation_cover(fx.unf, a_up).to_string(), "0000000");
}

TEST(Approx, Fig4MrCovers) {
  Fig4Fixture fx;
  const ConditionId p4 = condition_by_place(fx.unf, "p4");
  const ConditionId p7 = condition_by_place(fx.unf, "p7");
  EXPECT_EQ(mr_cover(fx.unf, p4, fx.events).to_string(), "1--0--0");  // a d' g'
  EXPECT_EQ(mr_cover(fx.unf, p7, fx.events).to_string(), "1--1--0");  // a d g'
}

TEST(Approx, Fig4RestrictedCoverOfP10) {
  Fig4Fixture fx;
  const ConditionId p10 = condition_by_place(fx.unf, "p10");
  const EventId a_dn = event_by_name(fx.unf, "a-");
  const logic::Cover cover = restricted_next_cover(fx.unf, p10, a_dn, fx.events);
  // Paper: C(p10) = a d e' g + a d f' g.
  EXPECT_EQ(cover_cubes(cover), (std::set<std::string>{"1--10-1", "1--1-01"}));
}

TEST(Approx, Fig4PaperChainsSelectsP4P7P10) {
  Fig4Fixture fx;
  const ApproxCover approx =
      approximate_cover(fx.unf, fx.a, true, ApproxSetPolicy::PaperChains);
  std::set<std::string> mr_places;
  for (const CoverAtom& atom : approx.atoms) {
    if (!atom.element.is_event) {
      mr_places.insert(fx.stg.net().place_name(fx.unf.place(atom.element.condition)));
    }
  }
  EXPECT_EQ(mr_places, (std::set<std::string>{"p4", "p7", "p10"}));
}

TEST(Approx, Fig4CombinedOnCoverMatchesPaper) {
  Fig4Fixture fx;
  const ApproxCover approx =
      approximate_cover(fx.unf, fx.a, true, ApproxSetPolicy::PaperChains);
  // C*On(a) = a'b'c'd'e'f'g' + a d' g' + a d g' + a d e' g + a d f' g.
  EXPECT_EQ(cover_cubes(approx.combined(fx.stg.signal_count())),
            (std::set<std::string>{"0000000", "1--0--0", "1--1--0", "1--10-1",
                                   "1--1-01"}));
}

TEST(Approx, FullPolicyIsSuperset) {
  // The Full policy must cover at least everything PaperChains covers.
  Fig4Fixture fx;
  const logic::Cover chains =
      approximate_cover(fx.unf, fx.a, true, ApproxSetPolicy::PaperChains)
          .combined(fx.stg.signal_count());
  const logic::Cover full = approximate_cover(fx.unf, fx.a, true, ApproxSetPolicy::Full)
                                .combined(fx.stg.signal_count());
  EXPECT_TRUE(full.contains_cover(chains));
}

/// Correctness of approximations: the approximated on-cover must contain the
/// exact on-set.  (It may intersect the off-set before refinement.)
class ApproxSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ApproxSoundness, ApproxCoverContainsExactOnSet) {
  Stg stg;
  switch (GetParam() % 4) {
    case 0: stg = stg::make_paper_fig1(); break;
    case 1: stg = stg::make_paper_fig4ab(); break;
    case 2: stg = stg::make_muller_pipeline(3); break;
    case 3: stg = stg::make_paper_fig4c(); break;
  }
  const ApproxSetPolicy policy =
      GetParam() < 4 ? ApproxSetPolicy::Full : ApproxSetPolicy::PaperChains;
  const Unfolding unf = Unfolding::build(stg);
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  for (std::size_t si = 0; si < stg.signal_count(); ++si) {
    const SignalId s(static_cast<std::uint32_t>(si));
    for (const bool value : {true, false}) {
      const logic::Cover approx =
          approximate_cover(unf, s, value, policy).combined(stg.signal_count());
      const logic::Cover exact =
          value ? sg::on_cover(sgraph, s) : sg::off_cover(sgraph, s);
      EXPECT_TRUE(approx.contains_cover(exact))
          << "approximation lost states of " << stg.signal_name(s) << " (value "
          << value << ") in " << stg.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Examples, ApproxSoundness, ::testing::Range(0, 8));

}  // namespace
}  // namespace punt::core
