// Oracle-consistency and per-rule fixtures for the `punt lint --deep`
// semantic tier (STG100..STG106, src/lint/semantic_rules.cpp).
//
// The oracle is the synthesis pipeline itself: a spec that `punt synth`
// (default options) rejects with CscError must deep-lint with an STG100
// error whose witnesses anchor to real source lines, and a spec that
// synthesises clean must deep-lint free of error-severity semantic
// findings.  The per-rule fixtures pin each STG1xx verdict — including the
// structural pre-screens the exact verdicts retract — with exact
// witness-span asserts against the fixture text.
//
// DeepLintChurn.* names are matched by the TSan CI job's ctest regex: the
// churn test drives N specs through one shared ModelCache on a
// multi-worker Executor, the daemon's deep-lint concurrency shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/lint/lint.hpp"
#include "src/lint/semantic_rules.hpp"
#include "src/server/protocol.hpp"
#include "src/server/service.hpp"
#include "src/stg/g_format.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt {
namespace {

using lint::FileInput;
using lint::FileLint;
using lint::LintOptions;
using util::Diagnostic;
using util::Severity;

LintOptions deep_options(core::ModelCache* cache = nullptr) {
  LintOptions options;
  options.deep = true;
  options.cache = cache;
  return options;
}

std::vector<const Diagnostic*> findings(const FileLint& lint, std::string_view rule) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : lint.diagnostics) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

/// The source token a span points at — what a witness-span assert compares
/// against, so a passing test proves the span lands on the real occurrence.
std::string token_at(std::string_view text, const util::SourceSpan& span) {
  if (!span.known()) return std::string();
  std::size_t start = 0;
  for (std::uint32_t line = 1; line < span.line; ++line) {
    start = text.find('\n', start);
    if (start == std::string_view::npos) return std::string();
    ++start;
  }
  const std::size_t end = text.find('\n', start);
  const std::string_view row = text.substr(
      start, end == std::string_view::npos ? std::string_view::npos : end - start);
  if (span.column == 0 || span.column - 1 + span.length > row.size()) {
    return std::string();
  }
  return std::string(row.substr(span.column - 1, span.length));
}

// --- Catalog -----------------------------------------------------------------

TEST(SemanticCatalog, SevenExactRulesDisjointFromTheStructuralTier) {
  const std::vector<lint::RuleInfo>& catalog = lint::semantic_rule_catalog();
  ASSERT_EQ(catalog.size(), 7u);
  const char* expected[] = {"STG100", "STG101", "STG102", "STG103",
                            "STG104", "STG105", "STG106"};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].id, expected[i]);
    EXPECT_TRUE(lint::is_semantic_rule(catalog[i].id));
    // Disjoint id spaces: nothing semantic appears in the structural catalog.
    for (const lint::RuleInfo& structural : lint::rule_catalog()) {
      EXPECT_NE(structural.id, catalog[i].id);
      EXPECT_FALSE(lint::is_semantic_rule(structural.id));
    }
  }
  EXPECT_EQ(catalog[0].severity, Severity::Error);    // CSC
  EXPECT_EQ(catalog[3].severity, Severity::Warning);  // dead transition
  EXPECT_EQ(catalog[4].severity, Severity::Warning);  // deadlock
}

// --- Oracle consistency with the synthesis pipeline --------------------------

TEST(SemanticOracle, CleanSynthesisImpliesCleanDeepLintAcrossTheRegistry) {
  core::ModelCache cache;
  LintOptions options = deep_options(&cache);
  for (const benchmarks::Benchmark& bench : benchmarks::table1()) {
    const stg::Stg stg = bench.make();
    // The oracle direction the issue pins: default `punt synth` accepts
    // every registry spec, so none may deep-lint with an error-severity
    // semantic finding.
    EXPECT_NO_THROW(core::synthesize(stg)) << bench.name;
    const FileLint lint =
        lint::lint_text(stg::write_g(stg), bench.name + ".g", options);
    EXPECT_EQ(lint.errors, 0u) << bench.name;
    for (const Diagnostic& d : lint.diagnostics) {
      EXPECT_FALSE(lint::is_semantic_rule(d.rule) && d.severity == Severity::Error)
          << bench.name << ": " << d.rule << ": " << d.message;
    }
  }
}

TEST(SemanticOracle, CscRejectedSpecYieldsStg100WithSourceAnchoredWitnesses) {
  const stg::Stg vme = stg::make_vme_bus();
  EXPECT_THROW(core::synthesize(vme), CscError);

  const std::string text = stg::write_g(vme);
  const FileLint lint = lint::lint_text(text, "vme.g", deep_options());
  EXPECT_FALSE(lint.ok());
  const std::vector<const Diagnostic*> csc = findings(lint, "STG100");
  ASSERT_FALSE(csc.empty());
  for (const Diagnostic* d : csc) {
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("CSC conflict"), std::string::npos);
    ASSERT_EQ(d->witnesses.size(), 2u) << d->message;
    std::size_t anchored_steps = 0;
    for (const util::Witness& w : d->witnesses) {
      EXPECT_NE(w.label.find("trace to state"), std::string::npos);
      for (const util::WitnessStep& step : w.steps) {
        ASSERT_TRUE(step.span.known()) << step.transition;
        // The span must land on the transition's real occurrence in the
        // source — not merely on *a* line.
        EXPECT_EQ(token_at(text, step.span), step.transition);
        ++anchored_steps;
      }
    }
    EXPECT_GT(anchored_steps, 0u) << d->message;
    EXPECT_TRUE(d->span.known()) << d->message;
  }
}

// --- Per-rule fixtures --------------------------------------------------------

// A choice place feeding both an output (c+) and an input (b+): firing the
// input disables the excited output — the paper's semi-modularity condition
// violated, reported exactly by STG101.
constexpr std::string_view kNonPersistent =
    ".model npersist\n"
    ".inputs b\n"
    ".outputs a c\n"
    ".graph\n"
    "p0 a+\n"
    "a+ q\n"
    "q c+\n"
    "q b+\n"
    "c+ c-\n"
    "c- m\n"
    "b+ b-\n"
    "b- m\n"
    "m a-\n"
    "a- p0\n"
    ".marking { p0 }\n"
    ".end\n";

TEST(SemanticRules, PersistencyViolationNamesTheDisablingFiring) {
  const FileLint lint = lint::lint_text(kNonPersistent, "npersist.g", deep_options());
  const std::vector<const Diagnostic*> hits = findings(lint, "STG101");
  ASSERT_FALSE(hits.empty());
  const Diagnostic& d = *hits.front();
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_NE(d.message.find("persistency"), std::string::npos);
  ASSERT_EQ(d.witnesses.size(), 2u);
  EXPECT_NE(d.witnesses[0].label.find("trace to state"), std::string::npos);
  EXPECT_EQ(d.witnesses[1].label, "disabling firing");
  ASSERT_EQ(d.witnesses[1].steps.size(), 1u);
  EXPECT_EQ(d.witnesses[1].steps[0].transition, "b+");
  // The finding anchors to the disabler's source occurrence.
  EXPECT_EQ(token_at(kNonPersistent, d.span), "b+");
  EXPECT_EQ(token_at(kNonPersistent, d.witnesses[1].steps[0].span), "b+");
}

// A fork whose branches both feed place m: the second concurrent producer
// overfills it.  Structurally this is only the conservative STG007 "may
// fire concurrently" pre-screen; the deep tier proves it and retracts the
// guess in favour of the exact STG102 error.
constexpr std::string_view kUnsafe =
    ".model unsafe\n"
    ".inputs a\n"
    ".outputs x y\n"
    ".graph\n"
    "p0 a+\n"
    "a+ x+\n"
    "a+ y+\n"
    "x+ m\n"
    "y+ m\n"
    "m a-\n"
    "a- x-\n"
    "a- y-\n"
    "x- p0\n"
    "y- p0\n"
    ".marking { p0 }\n"
    ".end\n";

TEST(SemanticRules, UnsafeNetGetsAnExactCapacityErrorAndDropsThePreScreen) {
  const FileLint shallow = lint::lint_text(kUnsafe, "unsafe.g");
  const std::vector<const Diagnostic*> guesses = findings(shallow, "STG007");
  EXPECT_TRUE(std::any_of(guesses.begin(), guesses.end(),
                          [](const Diagnostic* d) {
                            return d->message.find("may fire concurrently") !=
                                   std::string::npos;
                          }))
      << "fixture should trip the structural pre-screen";

  const FileLint deep = lint::lint_text(kUnsafe, "unsafe.g", deep_options());
  const std::vector<const Diagnostic*> hits = findings(deep, "STG102");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front()->severity, Severity::Error);
  EXPECT_NE(hits.front()->message.find("not 1-safe"), std::string::npos);
  EXPECT_EQ(token_at(kUnsafe, hits.front()->span), "m");
  // The exact verdict replaces the conservative half of STG007.
  for (const Diagnostic* d : findings(deep, "STG007")) {
    EXPECT_EQ(d->message.find("may fire concurrently"), std::string::npos)
        << d->message;
  }
}

// A second instance of a+ behind a never-marked self-loop place: dead.  The
// signal itself stays live through the first instance, so the strict parse
// (initial-code inference) succeeds and the state graph proves the instance
// unreachable.
constexpr std::string_view kDeadTransition =
    ".model deadt\n"
    ".inputs a\n"
    ".outputs b\n"
    ".graph\n"
    "p0 a+\n"
    "a+ b+\n"
    "b+ a-\n"
    "a- b-\n"
    "b- p0\n"
    "q a+/2\n"
    "a+/2 q\n"
    ".marking { p0 }\n"
    ".end\n";

TEST(SemanticRules, DeadTransitionVerdictRetractsTheStructuralGuess) {
  const FileLint shallow = lint::lint_text(kDeadTransition, "deadt.g");
  EXPECT_FALSE(findings(shallow, "STG004").empty())
      << "fixture should trip the structural reachability pre-screen";

  const FileLint deep = lint::lint_text(kDeadTransition, "deadt.g", deep_options());
  EXPECT_TRUE(findings(deep, "STG004").empty())
      << "the exact verdict must suppress the structural pre-screen";
  const std::vector<const Diagnostic*> hits = findings(deep, "STG103");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front()->severity, Severity::Warning);
  EXPECT_NE(hits.front()->message.find("'a+/2'"), std::string::npos);
  EXPECT_EQ(token_at(kDeadTransition, hits.front()->span), "a+/2");
  EXPECT_TRUE(deep.ok());  // dead code is a warning, not a refusal
}

// A one-way handshake that stops: after a+ then a- nothing is enabled.
constexpr std::string_view kDeadlock =
    ".model stops\n"
    ".outputs a\n"
    ".graph\n"
    "r a+\n"
    "a+ p\n"
    "p a-\n"
    "a- q\n"
    ".marking { r }\n"
    ".end\n";

TEST(SemanticRules, DeadlockWitnessIsTheFiringSequenceFromTheInitialState) {
  const FileLint lint = lint::lint_text(kDeadlock, "stops.g", deep_options());
  const std::vector<const Diagnostic*> hits = findings(lint, "STG104");
  ASSERT_EQ(hits.size(), 1u);
  const Diagnostic& d = *hits.front();
  EXPECT_EQ(d.severity, Severity::Warning);
  EXPECT_NE(d.message.find("deadlock"), std::string::npos);
  ASSERT_EQ(d.witnesses.size(), 1u);
  ASSERT_EQ(d.witnesses[0].steps.size(), 2u);
  EXPECT_EQ(d.witnesses[0].steps[0].transition, "a+");
  EXPECT_EQ(d.witnesses[0].steps[1].transition, "a-");
  EXPECT_EQ(token_at(kDeadlock, d.witnesses[0].steps[0].span), "a+");
  EXPECT_EQ(token_at(kDeadlock, d.witnesses[0].steps[1].span), "a-");
}

// a rises twice along one path (a+ then a+/2 with no a- between): the
// initial-code inference proves the state assignment inconsistent.
constexpr std::string_view kInconsistent =
    ".model incons\n"
    ".inputs a\n"
    ".outputs b\n"
    ".graph\n"
    "p0 a+\n"
    "a+ b+\n"
    "b+ a+/2\n"
    "a+/2 b-\n"
    "b- p0\n"
    ".marking { p0 }\n"
    ".end\n";

TEST(SemanticRules, InconsistentAssignmentAnchorsTheConflictingEdge) {
  const FileLint lint = lint::lint_text(kInconsistent, "incons.g", deep_options());
  const std::vector<const Diagnostic*> hits = findings(lint, "STG105");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front()->severity, Severity::Error);
  EXPECT_NE(hits.front()->message.find("inconsistent state assignment"),
            std::string::npos);
  EXPECT_EQ(token_at(kInconsistent, hits.front()->span), "a+/2");
}

// A clean two-phase handshake, deep-linted under an absurd state budget:
// the tier must give up loudly but *without* an error — the unfolding-based
// synthesis flow can still handle the spec, so refusal would be wrong.
constexpr std::string_view kTinyHandshake =
    ".model tiny\n"
    ".inputs r\n"
    ".outputs a\n"
    ".graph\n"
    "p0 r+\n"
    "r+ a+\n"
    "a+ r-\n"
    "r- a-\n"
    "a- p0\n"
    ".marking { p0 }\n"
    ".end\n";

TEST(SemanticRules, BlownStateBudgetIsAWarningNotARefusal) {
  LintOptions options = deep_options();
  options.deep_state_budget = 1;
  const FileLint lint = lint::lint_text(kTinyHandshake, "tiny.g", options);
  const std::vector<const Diagnostic*> hits = findings(lint, "STG106");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits.front()->severity, Severity::Warning);
  EXPECT_NE(hits.front()->message.find("state budget"), std::string::npos);
  EXPECT_TRUE(lint.ok());

  // Same spec under the default budget: clean, and no STG106 chatter.
  const FileLint roomy = lint::lint_text(kTinyHandshake, "tiny.g", deep_options());
  EXPECT_TRUE(findings(roomy, "STG106").empty());
  EXPECT_EQ(roomy.errors, 0u);
}

// Signal z can never fire, so no initial value for it exists: the strict
// parse behind the semantic model fails, and the tier reports the model
// unavailable at error severity (default `punt synth` refuses this spec).
constexpr std::string_view kUnresolvable =
    ".model stuck\n"
    ".inputs z\n"
    ".outputs a\n"
    ".graph\n"
    "p0 a+\n"
    "a+ a-\n"
    "a- p0\n"
    "q z+\n"
    "z+ q\n"
    ".marking { p0 }\n"
    ".end\n";

TEST(SemanticRules, UnbuildableModelIsAnErrorFindingNotAThrow) {
  const FileLint lint = lint::lint_text(kUnresolvable, "stuck.g", deep_options());
  const std::vector<const Diagnostic*> hits = findings(lint, "STG106");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits.front()->severity, Severity::Error);
  EXPECT_NE(hits.front()->message.find("could not infer initial values"),
            std::string::npos);
  EXPECT_FALSE(lint.ok());
  // No verdict was reached, so the structural pre-screens must survive.
  EXPECT_FALSE(findings(lint, "STG004").empty());
}

// --- Admission fast path ------------------------------------------------------

TEST(SemanticFastPath, LintErrorsEqualsTheErrorSubsetOfAFullPass) {
  const std::string_view texts[] = {
      kNonPersistent, kUnsafe, kDeadTransition, kTinyHandshake,
      // A structural error (dangling transition) plus unrelated warnings.
      ".model broken\n.inputs a\n.outputs b\n.graph\np0 a+\na+ b+\n"
      ".marking { p0 }\n.end\n",
      // Unparseable garbage: parser errors must match too.
      ".model junk\n.graph\n<<nonsense\n",
  };
  for (const std::string_view text : texts) {
    const std::vector<Diagnostic> fast = lint::lint_errors(text);
    const FileLint full = lint::lint_text(text, "spec.g");
    std::vector<const Diagnostic*> slow;
    for (const Diagnostic& d : full.diagnostics) {
      if (d.severity == Severity::Error) slow.push_back(&d);
    }
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].rule, slow[i]->rule);
      EXPECT_EQ(fast[i].message, slow[i]->message);
      EXPECT_EQ(fast[i].span.line, slow[i]->span.line);
      EXPECT_EQ(fast[i].span.column, slow[i]->span.column);
    }
  }
}

// --- Wire protocol ------------------------------------------------------------

TEST(ProtocolLint, RoundTripPreservesEveryField) {
  server::Request request;
  request.op = server::Op::Lint;
  request.lint_files.push_back({"a.g", std::string(kTinyHandshake)});
  request.lint_files.push_back({"b.g", std::string(kNonPersistent)});
  request.lint_deep = true;
  request.lint_json = true;
  request.lint_werror = true;
  request.lint_werror_rules = {"STG006", "STG104"};

  const server::Request parsed = server::request_from_json(server::to_json(request));
  EXPECT_EQ(parsed.op, server::Op::Lint);
  ASSERT_EQ(parsed.lint_files.size(), 2u);
  EXPECT_EQ(parsed.lint_files[0].name, "a.g");
  EXPECT_EQ(parsed.lint_files[0].text, kTinyHandshake);
  EXPECT_EQ(parsed.lint_files[1].name, "b.g");
  EXPECT_EQ(parsed.lint_files[1].text, kNonPersistent);
  EXPECT_TRUE(parsed.lint_deep);
  EXPECT_TRUE(parsed.lint_json);
  EXPECT_TRUE(parsed.lint_werror);
  EXPECT_EQ(parsed.lint_werror_rules, request.lint_werror_rules);
}

TEST(ProtocolLint, MissingFilesArrayIsAProtocolError) {
  EXPECT_THROW(server::request_from_json("{\"op\": \"lint\"}"), Error);
  EXPECT_THROW(server::request_from_json("{\"op\": \"lint\", \"files\": \"x\"}"),
               Error);
}

TEST(ServeLint, ResponseBytesMatchTheDirectRendering) {
  server::Request request;
  request.op = server::Op::Lint;
  request.lint_files.push_back({"tiny.g", std::string(kTinyHandshake)});
  request.lint_files.push_back({"npersist.g", std::string(kNonPersistent)});
  request.lint_deep = true;
  request.lint_json = true;

  core::ModelCache cache;
  const server::Response response = server::run_lint(request, cache, nullptr);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.exit_code, 1);  // npersist has error-severity findings

  // Byte-parity with the direct CLI path: same inputs through lint_files,
  // rendered with the same render_json.
  std::vector<FileInput> inputs = {{"tiny.g", std::string(kTinyHandshake)},
                                   {"npersist.g", std::string(kNonPersistent)}};
  core::ModelCache direct_cache;
  const std::string expected =
      lint::render_json(lint::lint_files(inputs, deep_options(&direct_cache)));
  EXPECT_EQ(response.output, expected);
  // The per-request cache delta the daemon-smoke CI greps for.
  EXPECT_NE(response.log.find("rebuild(s)"), std::string::npos);
}

// --- Concurrency churn (matched by the TSan CI regex) --------------------------

TEST(DeepLintChurn, ParallelRoundsOverASharedCacheAreDeterministic) {
  std::vector<FileInput> inputs;
  const std::vector<benchmarks::Benchmark>& registry = benchmarks::table1();
  for (std::size_t i = 0; i < 8 && i < registry.size(); ++i) {
    inputs.push_back({registry[i].name + ".g", stg::write_g(registry[i].make())});
  }
  inputs.push_back({"npersist.g", std::string(kNonPersistent)});
  inputs.push_back({"stops.g", std::string(kDeadlock)});

  core::ModelCache cache;
  core::Executor executor(4);
  LintOptions options = deep_options(&cache);
  options.executor = &executor;

  const std::vector<FileLint> baseline = lint::lint_files(inputs, options);
  ASSERT_EQ(baseline.size(), inputs.size());
  const std::size_t cold_builds = cache.stats().builds;
  EXPECT_GT(cold_builds, 0u);
  EXPECT_LE(cold_builds, inputs.size());

  for (int round = 0; round < 2; ++round) {
    const std::vector<FileLint> warm = lint::lint_files(inputs, options);
    ASSERT_EQ(warm.size(), baseline.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
      // Identical findings at any job count, on any round.
      EXPECT_EQ(warm[i].errors, baseline[i].errors) << inputs[i].filename;
      EXPECT_EQ(warm[i].warnings, baseline[i].warnings) << inputs[i].filename;
      ASSERT_EQ(warm[i].diagnostics.size(), baseline[i].diagnostics.size())
          << inputs[i].filename;
      for (std::size_t j = 0; j < warm[i].diagnostics.size(); ++j) {
        EXPECT_EQ(warm[i].diagnostics[j].rule, baseline[i].diagnostics[j].rule);
        EXPECT_EQ(warm[i].diagnostics[j].message,
                  baseline[i].diagnostics[j].message);
      }
      EXPECT_FALSE(warm[i].model_built) << inputs[i].filename;
    }
  }
  // Warm rounds resolve every model from the resident tier: zero rebuilds.
  EXPECT_EQ(cache.stats().builds, cold_builds);
}

}  // namespace
}  // namespace punt
