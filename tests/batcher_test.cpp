// Tests for the serve-mode request Batcher (server/batcher.hpp), below the
// socket layer: concurrent submissions fusing into one union batch with
// byte-identical per-request responses, admission control (queue bound and
// per-connection cap shedding with explicit "overloaded" refusals), drain
// completing every admitted item, refusal after shutdown, and parse
// failures answered without ever touching the queue.
//
// Suite names start with "Server" so CI's TSan pass picks them up — the
// Batcher is exactly the kind of cv/thread code that pass exists for.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/server/batcher.hpp"
#include "src/server/protocol.hpp"
#include "src/server/service.hpp"
#include "src/stg/g_format.hpp"
#include "src/stg/generators.hpp"

namespace punt::server {
namespace {

using stg::Stg;

SynthJob synth_job(const Stg& stg) {
  Request request;
  request.op = Op::Synth;
  request.g_text = stg::write_g(stg);
  return prepare_synth(std::move(request));
}

/// The deterministic part of a synth response (drops the timing line).
std::string strip_timing(const std::string& text) {
  std::string out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size() - 1;
    const std::string_view line(text.data() + start, end - start + 1);
    if (line.rfind("# unfold ", 0) != 0) out.append(line);
    start = end + 1;
  }
  return out;
}

/// What a direct `punt synth` prints, built independently of the Batcher.
std::string direct_synth_output(const Stg& stg) {
  const core::SynthesisResult result = core::synthesize(stg);
  const net::Netlist netlist = net::Netlist::from_synthesis(stg, result);
  char head[128];
  std::snprintf(head, sizeof head, "# %s: %zu signals, %zu literals\n",
                stg.name().c_str(), stg.signal_count(), netlist.literal_count());
  return std::string(head) + netlist.to_eqn();
}

void wait_for_queue_depth(const Batcher& batcher, std::size_t depth) {
  while (batcher.queued() < depth) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServerBatcher, FusesConcurrentSubmissionsIntoOneBatch) {
  core::ModelCache cache;
  core::Executor executor(2);
  BatcherOptions options;
  options.window_seconds = 1.0;  // generous: absorbs CI scheduling skew
  Batcher batcher(options, &cache, &executor);

  // Two distinct STGs, each submitted twice, from four connections at once:
  // one window, one union graph, one model build per distinct key.
  const std::vector<Stg> stgs = {stg::make_paper_fig1(), stg::make_paper_fig1(),
                                 stg::make_muller_pipeline(3),
                                 stg::make_muller_pipeline(3)};
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < stgs.size(); ++i) {
    futures.push_back(std::async(std::launch::async, [&batcher, &stgs, i] {
      return batcher.submit(synth_job(stgs[i]), /*connection=*/i + 1);
    }));
  }
  std::vector<Response> responses;
  for (auto& future : futures) responses.push_back(future.get());

  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].ok);
    EXPECT_EQ(responses[i].exit_code, 0) << responses[i].log;
    EXPECT_EQ(strip_timing(responses[i].output), direct_synth_output(stgs[i]))
        << "submission " << i << " diverged from the direct invocation";
    // Every member of a fused batch carries the batch's cache-delta
    // summary: two builds (two distinct keys), two in-batch reuses.
    EXPECT_NE(responses[i].log.find("2 rebuild(s)"), std::string::npos)
        << responses[i].log;
  }

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.batches, 1u) << "the window should have gathered all four";
  EXPECT_EQ(stats.fused_requests, 4u);
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(stats.queue_high_water, 4u);
  EXPECT_EQ(stats.batch_size_histogram[3], 1u);  // one batch of size 4
  EXPECT_DOUBLE_EQ(stats.mean_batch(), 4.0);
  EXPECT_EQ(stats.shed(), 0u);
  // One build per distinct STG across the whole fused batch.
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(ServerBatcher, QueueBoundShedsWithOverloadedRefusal) {
  core::Executor executor(1);
  BatcherOptions options;
  options.window_seconds = 30.0;  // park the first item in the queue
  options.max_queue = 1;
  Batcher batcher(options, nullptr, &executor);

  auto first = std::async(std::launch::async, [&batcher] {
    return batcher.submit(synth_job(stg::make_paper_fig1()), 1);
  });
  wait_for_queue_depth(batcher, 1);

  const Response refusal = batcher.submit(synth_job(stg::make_paper_fig1()), 2);
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.error.rfind("overloaded", 0), 0u) << refusal.error;
  EXPECT_NE(refusal.error.find("--max-queue"), std::string::npos) << refusal.error;

  // The shed didn't disturb the admitted item: the drain completes it.
  batcher.begin_drain();
  const Response admitted = first.get();
  EXPECT_TRUE(admitted.ok);
  EXPECT_EQ(admitted.exit_code, 0);

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.shed_connection_cap, 0u);
}

TEST(ServerBatcher, PerConnectionCapShedsWithOverloadedRefusal) {
  core::Executor executor(1);
  BatcherOptions options;
  options.window_seconds = 30.0;
  options.max_per_connection = 1;
  Batcher batcher(options, nullptr, &executor);

  constexpr std::uint64_t kConnection = 42;
  auto first = std::async(std::launch::async, [&batcher] {
    return batcher.submit(synth_job(stg::make_paper_fig1()), kConnection);
  });
  wait_for_queue_depth(batcher, 1);

  // Same connection: refused by the cap.  A different connection: admitted.
  const Response refusal = batcher.submit(synth_job(stg::make_paper_fig1()), kConnection);
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.error.rfind("overloaded", 0), 0u) << refusal.error;
  EXPECT_NE(refusal.error.find("in flight"), std::string::npos) << refusal.error;
  auto second = std::async(std::launch::async, [&batcher] {
    return batcher.submit(synth_job(stg::make_paper_fig1()), kConnection + 1);
  });

  batcher.begin_drain();
  EXPECT_EQ(first.get().exit_code, 0);
  EXPECT_EQ(second.get().exit_code, 0);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed_connection_cap, 1u);
}

TEST(ServerBatcher, DrainCompletesEveryAdmittedItem) {
  core::ModelCache cache;
  core::Executor executor(2);
  BatcherOptions options;
  options.window_seconds = 30.0;  // nothing dispatches until the drain
  Batcher batcher(options, &cache, &executor);

  constexpr std::size_t kItems = 3;
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kItems; ++i) {
    futures.push_back(std::async(std::launch::async, [&batcher, i] {
      return batcher.submit(synth_job(stg::make_paper_fig1()), i + 1);
    }));
  }
  wait_for_queue_depth(batcher, kItems);

  batcher.begin_drain();
  batcher.drain();
  for (auto& future : futures) {
    const Response response = future.get();
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.exit_code, 0) << response.log;
  }
  EXPECT_EQ(batcher.stats().fused_requests, kItems);

  // After the drain the batcher refuses instead of queuing forever.
  const Response late = batcher.submit(synth_job(stg::make_paper_fig1()), 9);
  EXPECT_FALSE(late.ok);
  EXPECT_NE(late.error.find("shutting down"), std::string::npos) << late.error;
  EXPECT_EQ(batcher.stats().admitted, kItems);
}

TEST(ServerBatcher, ParseFailuresAreAnsweredWithoutAdmission) {
  core::Executor executor(1);
  BatcherOptions options;
  options.window_seconds = 30.0;
  Batcher batcher(options, nullptr, &executor);

  Request broken;
  broken.op = Op::Synth;
  broken.g_text = "this is not a .g file";
  const Response response = batcher.submit(prepare_synth(std::move(broken)), 1);
  // A prepare failure is a *synthesis* failure (ok=true, exit 2, CLI
  // diagnostic), answered synchronously — never queued, never fused.
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.exit_code, 2);
  EXPECT_NE(response.log.find("error: "), std::string::npos) << response.log;
  EXPECT_EQ(batcher.stats().admitted, 0u);
  EXPECT_EQ(batcher.queued(), 0u);
}

TEST(ServerBatcher, ZeroWindowStillFusesWorkQueuedDuringExecution) {
  // window_seconds = 0 inside the Batcher means "dispatch immediately" —
  // but anything that queues while a previous batch executes still fuses.
  // Sequential submissions must each complete correctly.
  core::ModelCache cache;
  core::Executor executor(1);
  BatcherOptions options;
  options.window_seconds = 0.0;
  Batcher batcher(options, &cache, &executor);
  for (int i = 0; i < 3; ++i) {
    const Response response = batcher.submit(synth_job(stg::make_paper_fig1()), 1);
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.exit_code, 0);
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.fused_requests, 3u);
  EXPECT_GE(stats.batches, 1u);
}

}  // namespace
}  // namespace punt::server
