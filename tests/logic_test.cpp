// Unit and property tests for cubes, covers and the espresso minimiser.
#include <gtest/gtest.h>

#include <vector>

#include "src/logic/cover.hpp"
#include "src/logic/cube.hpp"
#include "src/logic/espresso.hpp"
#include "src/util/error.hpp"
#include "src/util/xorshift.hpp"

namespace punt::logic {
namespace {

std::vector<std::uint8_t> point(std::initializer_list<int> bits) {
  std::vector<std::uint8_t> out;
  for (const int b : bits) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

/// Enumerates all 2^n points of an n-variable space (n <= 20).
std::vector<std::vector<std::uint8_t>> all_points(std::size_t n) {
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t v = 0; v < (std::size_t{1} << n); ++v) {
    std::vector<std::uint8_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = (v >> i) & 1;
    out.push_back(std::move(p));
  }
  return out;
}

TEST(Cube, FromStringAndBack) {
  const Cube c = Cube::from_string("10-1");
  EXPECT_EQ(c.to_string(), "10-1");
  EXPECT_EQ(c.get(0), Lit::One);
  EXPECT_EQ(c.get(1), Lit::Zero);
  EXPECT_EQ(c.get(2), Lit::DC);
  EXPECT_EQ(c.literal_count(), 3u);
}

TEST(Cube, FromStringRejectsJunk) {
  EXPECT_THROW(Cube::from_string("10x"), Error);
}

TEST(Cube, Containment) {
  const Cube big = Cube::from_string("1--");
  const Cube small = Cube::from_string("101");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Cube, IntersectionAndDistance) {
  const Cube a = Cube::from_string("1-0");
  const Cube b = Cube::from_string("-10");
  const auto i = a.intersect(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->to_string(), "110");
  const Cube c = Cube::from_string("0-0");
  EXPECT_FALSE(a.intersect(c).has_value());
  EXPECT_EQ(a.distance(c), 1u);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(Cube, Supercube) {
  const Cube a = Cube::from_string("101");
  const Cube b = Cube::from_string("111");
  EXPECT_EQ(a.supercube_with(b).to_string(), "1-1");
}

TEST(Cube, CoversPoint) {
  const Cube c = Cube::from_string("1-0");
  EXPECT_TRUE(c.covers_point(point({1, 0, 0})));
  EXPECT_TRUE(c.covers_point(point({1, 1, 0})));
  EXPECT_FALSE(c.covers_point(point({0, 1, 0})));
}

TEST(Cube, ExprRendering) {
  const std::vector<std::string> names{"a", "b", "c"};
  EXPECT_EQ(Cube::from_string("10-").to_expr(names), "a b'");
  EXPECT_EQ(Cube::from_string("---").to_expr(names), "1");
}

TEST(Cover, PointMembership) {
  Cover f(3);
  f.add(Cube::from_string("1--"));
  f.add(Cube::from_string("--1"));
  EXPECT_TRUE(f.covers_point(point({1, 0, 0})));
  EXPECT_TRUE(f.covers_point(point({0, 0, 1})));
  EXPECT_FALSE(f.covers_point(point({0, 1, 0})));
}

TEST(Cover, SccRemovesContainedCubes) {
  Cover f(3);
  f.add(Cube::from_string("101"));
  f.add(Cube::from_string("1--"));
  f.add(Cube::from_string("1--"));
  f.make_irredundant_scc();
  EXPECT_EQ(f.cube_count(), 1u);
  EXPECT_EQ(f.cube(0).to_string(), "1--");
}

TEST(Cover, TautologyBasics) {
  EXPECT_TRUE(Cover::one(4).tautology());
  EXPECT_FALSE(Cover(4).tautology());
  Cover f(1);
  f.add(Cube::from_string("0"));
  f.add(Cube::from_string("1"));
  EXPECT_TRUE(f.tautology());
}

TEST(Cover, TautologyNeedsBothBranches) {
  Cover f(2);
  f.add(Cube::from_string("1-"));
  f.add(Cube::from_string("01"));
  EXPECT_FALSE(f.tautology());  // point 00 uncovered
  f.add(Cube::from_string("-0"));
  EXPECT_TRUE(f.tautology());
}

TEST(Cover, ContainsCubeJointly) {
  Cover f(2);
  f.add(Cube::from_string("1-"));
  f.add(Cube::from_string("0-"));
  // Neither cube alone contains "--", but together they do.
  EXPECT_TRUE(f.contains_cube(Cube::from_string("--")));
  Cover g(2);
  g.add(Cube::from_string("11"));
  EXPECT_FALSE(g.contains_cube(Cube::from_string("1-")));
}

TEST(Cover, ComplementSingleCube) {
  Cover f(3);
  f.add(Cube::from_string("10-"));
  Cover c = f.complement();
  // De Morgan: a'+b — as cubes {0--, -1-}.
  c.normalize();
  EXPECT_EQ(c.cube_count(), 2u);
  for (const auto& p : all_points(3)) {
    EXPECT_NE(f.covers_point(p), c.covers_point(p));
  }
}

TEST(Cover, ComplementExhaustiveAgreement) {
  // complement() must disagree with the cover on every point.
  XorShift rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(5);
    Cover f(n);
    const std::size_t cubes = rng.below(5);
    for (std::size_t i = 0; i < cubes; ++i) {
      Cube c(n);
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint64_t r = rng.below(3);
        c.set(v, r == 0 ? Lit::Zero : (r == 1 ? Lit::One : Lit::DC));
      }
      f.add(c);
    }
    const Cover comp = f.complement();
    for (const auto& p : all_points(n)) {
      EXPECT_NE(f.covers_point(p), comp.covers_point(p))
          << "n=" << n << " point mismatch; F=" << f.to_pla();
    }
  }
}

TEST(Cover, IntersectMatchesPointwiseAnd) {
  Cover f(3), g(3);
  f.add(Cube::from_string("1--"));
  f.add(Cube::from_string("-0-"));
  g.add(Cube::from_string("--1"));
  const Cover i = f.intersect(g);
  for (const auto& p : all_points(3)) {
    EXPECT_EQ(i.covers_point(p), f.covers_point(p) && g.covers_point(p));
  }
  EXPECT_TRUE(f.intersects(g));
  Cover h(3);
  h.add(Cube::from_string("00-"));
  Cover k(3);
  k.add(Cube::from_string("11-"));
  EXPECT_FALSE(h.intersects(k));
}

TEST(Cover, CofactorSemantics) {
  Cover f(3);
  f.add(Cube::from_string("11-"));
  f.add(Cube::from_string("0-1"));
  const Cover fc = f.cofactor(Cube::from_string("1--"));
  // In the a=1 subspace only the first cube survives (as "-1-" with a freed).
  EXPECT_EQ(fc.cube_count(), 1u);
  EXPECT_EQ(fc.cube(0).to_string(), "-1-");
}

TEST(Cover, ExprRendering) {
  Cover f(3);
  EXPECT_EQ(f.to_expr({"a", "b", "c"}), "0");
  f.add(Cube::from_string("1-1"));
  f.add(Cube::from_string("0--"));
  EXPECT_EQ(f.to_expr({"a", "b", "c"}), "a c + a'");
}

// --- Espresso ---------------------------------------------------------------

/// The paper's running example: On(b) = {100,101,110,111,001,011},
/// Off(b) = {010,000}; minimal cover is a + c (2 literals).
TEST(Espresso, PaperExampleAPlusC) {
  Cover on(3), off(3);
  for (const char* s : {"100", "101", "110", "111", "001", "011"}) {
    on.add(Cube::from_string(s));
  }
  for (const char* s : {"010", "000"}) off.add(Cube::from_string(s));
  MinimizeStats stats;
  const Cover min = espresso(on, off, &stats);
  EXPECT_EQ(min.literal_count(), 2u);
  EXPECT_EQ(min.cube_count(), 2u);
  min.to_expr({"a", "b", "c"});  // must not throw
  // Verify semantics: covers all of on, avoids all of off.
  EXPECT_TRUE(min.contains_cover(on));
  EXPECT_FALSE(min.intersects(off));
  EXPECT_EQ(stats.initial_literals, 18u);
  EXPECT_EQ(stats.final_literals, 2u);
}

TEST(Espresso, OffsetExampleNotAC) {
  // C_Off of the same example: {010, 000} -> a'c'.
  Cover on(3), off(3);
  for (const char* s : {"010", "000"}) on.add(Cube::from_string(s));
  for (const char* s : {"100", "101", "110", "111", "001", "011"}) {
    off.add(Cube::from_string(s));
  }
  const Cover min = espresso(on, off);
  EXPECT_EQ(min.literal_count(), 2u);
  EXPECT_EQ(min.cube_count(), 1u);
  EXPECT_EQ(min.cube(0).to_string(), "0-0");
}

TEST(Espresso, ContradictoryInputsRejected) {
  Cover on(2), off(2);
  on.add(Cube::from_string("1-"));
  off.add(Cube::from_string("11"));
  EXPECT_THROW(espresso(on, off), Error);
}

TEST(Espresso, UsesDontCares) {
  // on = {11}, off = {00}; everything else DC -> a single literal suffices.
  Cover on(2), off(2);
  on.add(Cube::from_string("11"));
  off.add(Cube::from_string("00"));
  const Cover min = espresso(on, off);
  EXPECT_EQ(min.literal_count(), 1u);
}

TEST(Espresso, WithExplicitDcWrapper) {
  Cover on(2), dc(2);
  on.add(Cube::from_string("11"));
  dc.add(Cube::from_string("10"));
  dc.add(Cube::from_string("01"));
  const Cover min = espresso_with_dc(on, dc);
  // off = {00}; one literal covers on within on+dc.
  EXPECT_EQ(min.literal_count(), 1u);
  EXPECT_TRUE(min.contains_cover(on));
  EXPECT_FALSE(min.covers_point(point({0, 0})));
}

/// Property sweep: random on/off partitions of small spaces; the minimised
/// cover must cover `on` exactly-or-more and never touch `off`.
class EspressoProperty : public ::testing::TestWithParam<int> {};

TEST_P(EspressoProperty, CorrectOnRandomPartitions) {
  XorShift rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::size_t n = 2 + rng.below(4);  // 2..5 variables
  Cover on(n), off(n);
  for (const auto& p : all_points(n)) {
    const std::uint64_t bucket = rng.below(3);  // on / off / dc
    if (bucket == 0) on.add(Cube::from_code(p));
    if (bucket == 1) off.add(Cube::from_code(p));
  }
  if (on.empty()) return;  // nothing to minimise
  MinimizeStats stats;
  const Cover min = espresso(on, off, &stats);
  EXPECT_TRUE(min.contains_cover(on));
  EXPECT_FALSE(min.intersects(off));
  EXPECT_LE(stats.final_literals, stats.initial_literals);
}

INSTANTIATE_TEST_SUITE_P(RandomPartitions, EspressoProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace punt::logic
