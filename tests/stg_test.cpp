// Unit tests for the STG layer: model building, labels, `.g` round trips,
// initial-code inference, generators.
#include <gtest/gtest.h>

#include "src/stg/g_format.hpp"
#include "src/stg/generators.hpp"
#include "src/stg/stg.hpp"
#include "src/util/error.hpp"

namespace punt::stg {
namespace {

TEST(Stg, SignalAndTransitionNaming) {
  Stg stg;
  const SignalId a = stg.add_signal("a", SignalKind::Output);
  const pn::TransitionId t1 = stg.add_transition(a, Polarity::Rise);
  const pn::TransitionId t2 = stg.add_transition(a, Polarity::Rise);
  const pn::TransitionId t3 = stg.add_transition(a, Polarity::Fall);
  EXPECT_EQ(stg.transition_name(t1), "a+");
  EXPECT_EQ(stg.transition_name(t2), "a+/2");
  EXPECT_EQ(stg.transition_name(t3), "a-");
  EXPECT_EQ(stg.instances_of(a).size(), 3u);
}

TEST(Stg, DuplicateSignalRejected) {
  Stg stg;
  stg.add_signal("a", SignalKind::Input);
  EXPECT_THROW(stg.add_signal("a", SignalKind::Output), ValidationError);
}

TEST(Stg, ApplyTogglesAndChecksConsistency) {
  Stg stg;
  const SignalId a = stg.add_signal("a", SignalKind::Output);
  const pn::TransitionId up = stg.add_transition(a, Polarity::Rise);
  const pn::TransitionId dn = stg.add_transition(a, Polarity::Fall);
  Code code{0};
  stg.apply(up, code);
  EXPECT_EQ(code[0], 1);
  stg.apply(dn, code);
  EXPECT_EQ(code[0], 0);
  EXPECT_THROW(stg.apply(dn, code), ImplementabilityError);  // a already 0
}

TEST(Stg, NonInputSignals) {
  Stg stg;
  stg.add_signal("in", SignalKind::Input);
  const SignalId out = stg.add_signal("out", SignalKind::Output);
  const SignalId internal = stg.add_signal("x", SignalKind::Internal);
  EXPECT_EQ(stg.non_input_signals(), (std::vector<SignalId>{out, internal}));
}

TEST(Generators, PaperFig1IsValidFreeChoice) {
  const Stg stg = make_paper_fig1();
  EXPECT_EQ(stg.signal_count(), 3u);
  EXPECT_EQ(stg.net().transition_count(), 8u);
  EXPECT_EQ(stg.net().place_count(), 9u);
  EXPECT_TRUE(stg.net().is_free_choice());
  EXPECT_FALSE(stg.net().is_marked_graph());
  // Two instances of b+ and of c+ as reconstructed from Fig. 1(b).
  const SignalId b = *stg.find_signal("b");
  const SignalId c = *stg.find_signal("c");
  EXPECT_EQ(stg.instances_of(b).size(), 3u);  // b+, b+/2, b-
  EXPECT_EQ(stg.instances_of(c).size(), 3u);  // c+, c+/2, c-
}

TEST(Generators, MullerPipelineShape) {
  const Stg stg = make_muller_pipeline(3);
  EXPECT_EQ(stg.signal_count(), 4u);  // a0..a3
  EXPECT_EQ(stg.net().transition_count(), 8u);
  EXPECT_TRUE(stg.net().is_marked_graph());
  // Initially only the environment request a0+ is enabled.
  const auto enabled = stg.net().enabled_transitions(stg.net().initial_marking());
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(stg.transition_name(enabled.front()), "a0+");
}

TEST(Generators, MullerPipelineRejectsZeroStages) {
  EXPECT_THROW(make_muller_pipeline(0), ValidationError);
}

TEST(Generators, CounterflowHas34SignalsAt16Stages) {
  const Stg stg = make_counterflow_pipeline(16);
  EXPECT_EQ(stg.signal_count(), 34u);  // the paper's configuration
  EXPECT_TRUE(stg.net().is_marked_graph());
}

TEST(Generators, VmeBusIsValid) {
  const Stg stg = make_vme_bus();
  EXPECT_EQ(stg.signal_count(), 5u);
  EXPECT_EQ(stg.non_input_signals().size(), 3u);  // d, lds, dtack
}

TEST(GFormat, ParseMinimalStg) {
  const char* text = R"(
.model tiny
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
)";
  const Stg stg = parse_g(text);
  EXPECT_EQ(stg.name(), "tiny");
  EXPECT_EQ(stg.signal_count(), 2u);
  EXPECT_EQ(stg.net().transition_count(), 4u);
  EXPECT_EQ(stg.net().place_count(), 4u);
  // Inferred initial values: a+ fires first from the marked place, so both
  // signals start at 0.
  EXPECT_EQ(stg.initial_value(*stg.find_signal("a")), 0);
  EXPECT_EQ(stg.initial_value(*stg.find_signal("b")), 0);
}

TEST(GFormat, ParseHonorsInitValues) {
  const char* text = R"(
.model tiny
.inputs a
.outputs b
.graph
a- b+
b+ a+
a+ b-
b- a-
.marking { <b-,a-> }
.init_values a=1 b=1
.end
)";
  const Stg stg = parse_g(text);
  EXPECT_EQ(stg.initial_value(*stg.find_signal("a")), 1);
  EXPECT_EQ(stg.initial_value(*stg.find_signal("b")), 1);
}

TEST(GFormat, ParseExplicitPlacesAndOccurrenceSuffixes) {
  const char* text = R"(
.model two
.outputs x y
.graph
p0 x+ x+/2
x+ y+
x+/2 y+/2
y+ p1
y+/2 p1
p1 x-
x- y-
y- p0
.marking { p0 }
.end
)";
  const Stg stg = parse_g(text);
  const SignalId x = *stg.find_signal("x");
  EXPECT_EQ(stg.instances_of(x).size(), 3u);
  ASSERT_TRUE(stg.net().find_transition("x+/2").has_value());
  ASSERT_TRUE(stg.net().find_place("p0").has_value());
  // p0 is a choice place between the two x+ instances.
  EXPECT_EQ(stg.net().choice_places().size(), 1u);
}

TEST(GFormat, RoundTripPreservesStructureAndCodes) {
  const Stg original = make_paper_fig1();
  const std::string text = write_g(original);
  const Stg reparsed = parse_g(text);
  EXPECT_EQ(reparsed.signal_count(), original.signal_count());
  EXPECT_EQ(reparsed.net().transition_count(), original.net().transition_count());
  EXPECT_EQ(reparsed.net().place_count(), original.net().place_count());
  for (std::size_t s = 0; s < original.signal_count(); ++s) {
    const SignalId sig(static_cast<std::uint32_t>(s));
    const auto found = reparsed.find_signal(original.signal_name(sig));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(reparsed.initial_value(*found), original.initial_value(sig));
    EXPECT_EQ(reparsed.signal_kind(*found), original.signal_kind(sig));
  }
}

TEST(GFormat, RoundTripMullerPipeline) {
  const Stg original = make_muller_pipeline(4);
  const Stg reparsed = parse_g(write_g(original));
  EXPECT_EQ(reparsed.signal_count(), original.signal_count());
  EXPECT_EQ(reparsed.net().transition_count(), original.net().transition_count());
  EXPECT_EQ(reparsed.net().place_count(), original.net().place_count());
}

TEST(GFormat, MissingEndRejected) {
  EXPECT_THROW(parse_g(".model x\n.outputs a\n.graph\na+ a-\na- a+\n.marking {<a-,a+>}"),
               ParseError);
}

TEST(GFormat, UnknownDirectiveRejected) {
  EXPECT_THROW(parse_g(".bogus\n.end\n"), ParseError);
}

TEST(GFormat, UndeclaredSignalBecomesPlace) {
  // 'q' is not declared, so "q a+" reads as place -> transition.
  const char* text = R"(
.model t
.outputs a
.graph
q a+
a+ a-
a- q
.marking { q }
.end
)";
  const Stg stg = parse_g(text);
  EXPECT_TRUE(stg.net().find_place("q").has_value());
}

TEST(GFormat, SignedTokenForUndeclaredSignalIsAPlace) {
  const char* text = R"(
.model t
.outputs a
.graph
a+ b+
b+ a-
a- p
p a+
.marking { p }
.end
)";
  // b+ parses like a transition token but b is undeclared, so "b+" is a
  // place name; arcs run a+ -> (b+) -> a- directly with no implicit place.
  const Stg stg = parse_g(text);
  EXPECT_TRUE(stg.net().find_place("b+").has_value());
  EXPECT_EQ(stg.net().place_count(), 2u);
}

TEST(GFormat, MarkedPlaceMustExist) {
  const char* text = R"(
.model t
.outputs a
.graph
p a+
a+ a-
a- p
.marking { nosuch }
.end
)";
  EXPECT_THROW(parse_g(text), ParseError);
}

TEST(GFormat, CommentsAndBlankLinesIgnored) {
  const char* text = R"(
# header comment
.model t

.outputs a
.graph
p a+   # trailing comment
a+ a-
a- p
.marking { p }
.end
)";
  const Stg stg = parse_g(text);
  EXPECT_EQ(stg.net().transition_count(), 2u);
}

TEST(GFormat, InferenceStopsOnceAllSignalsResolved) {
  // The net below is inconsistent (a+ twice with no a- in between), but the
  // parser's inference legitimately stops as soon as every signal's initial
  // value is known — here after the *first* a+ and b+.  The inconsistency is
  // the state-graph builder's job to report (see sg_test).
  const char* text = R"(
.model bad
.outputs a b
.graph
p a+
a+ q
q b+
b+ r
r a+/2
a+/2 s
.marking { p }
.end
)";
  const Stg stg = parse_g(text);
  EXPECT_EQ(stg.initial_value(*stg.find_signal("a")), 0);
  EXPECT_EQ(stg.initial_value(*stg.find_signal("b")), 0);
}

TEST(Stg, WriteGIncludesInitValues) {
  const std::string text = write_g(make_paper_fig1());
  EXPECT_NE(text.find(".init_values"), std::string::npos);
  EXPECT_NE(text.find("a=0"), std::string::npos);
}

}  // namespace
}  // namespace punt::stg
