// Tests for the CostLedger (DESIGN.md §10): EWMA folding, stable node keys,
// the serialised image (round-trip, corruption, truncation and version-bump
// degradation), atomic save/load beside a model-cache directory, and the
// per-entry estimate `punt bench run --weights=<ledger>` partitions by.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <unistd.h>

#include "src/core/cost_ledger.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/synthesis.hpp"
#include "src/stg/generators.hpp"
#include "src/stg/stg.hpp"

namespace punt::core {
namespace {

namespace fs = std::filesystem;

/// A directory unique to this test, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("punt-ledger-test-" + tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CostLedger, FirstSampleIsTakenVerbatimThenEwmaSmooths) {
  CostLedger ledger;
  EXPECT_EQ(ledger.estimate("model:0"), 0.0);  // unknown key
  ledger.observe("model:0", 1.0);
  EXPECT_DOUBLE_EQ(ledger.estimate("model:0"), 1.0);
  ledger.observe("model:0", 2.0);
  // cost' = alpha * sample + (1 - alpha) * cost
  EXPECT_DOUBLE_EQ(ledger.estimate("model:0"),
                   CostLedger::kAlpha * 2.0 + (1 - CostLedger::kAlpha) * 1.0);
  EXPECT_EQ(ledger.size(), 1u);
  const CostLedgerStats stats = ledger.stats();
  EXPECT_EQ(stats.observations, 2u);
  EXPECT_GE(stats.estimate_hits, 2u);
  EXPECT_GE(stats.estimate_misses, 1u);
}

TEST(CostLedger, RejectsUnusableSamples) {
  CostLedger ledger;
  ledger.observe("derive:0:x", -1.0);
  ledger.observe("derive:0:x", std::numeric_limits<double>::quiet_NaN());
  ledger.observe("derive:0:x", std::numeric_limits<double>::infinity());
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.estimate("derive:0:x"), 0.0);
}

TEST(CostLedger, KeysAreStableAndSignalScoped) {
  const stg::Stg stg = stg::make_vme_bus();
  SynthesisOptions options;
  // The model digest is the ModelCache key's digest: an arch sweep shares
  // one model-cost entry exactly as it shares one cached model.
  EXPECT_EQ(CostLedger::model_digest(stg, options),
            CostLedger::model_digest_from_key(ModelCache::key_of(stg, options)));
  SynthesisOptions rs = options;
  rs.architecture = Architecture::RsLatch;
  EXPECT_EQ(CostLedger::model_digest(stg, options), CostLedger::model_digest(stg, rs));
  // ...but the entry digest folds the derivation-only options in: an arch
  // change costs different derive/minimize work.
  EXPECT_NE(CostLedger::entry_digest(stg, options), CostLedger::entry_digest(stg, rs));
  EXPECT_EQ(CostLedger::entry_digest(stg, options),
            CostLedger::entry_digest_from_key(ModelCache::key_of(stg, options), options));
  // Signal scoping: same digest, different signal → different key.
  EXPECT_NE(CostLedger::key_of("derive", 7, "a"), CostLedger::key_of("derive", 7, "b"));
  EXPECT_NE(CostLedger::key_of("derive", 7, "a"), CostLedger::key_of("minimize", 7, "a"));
}

TEST(CostLedger, SerializedImageRoundTripsAndIsDeterministic) {
  CostLedger ledger;
  ledger.observe("model:1f", 0.25);
  ledger.observe("derive:1f:x", 0.5);
  ledger.observe("derive:1f:x", 1.5);
  ledger.observe("minimize:1f:x", 0.125);
  const std::string image = ledger.serialize();
  ASSERT_TRUE(CostLedger::is_ledger_image(image));
  // Deterministic: equal tables produce byte-identical images (keys are
  // sorted at serialisation), so racing shards publish comparable files.
  EXPECT_EQ(image, ledger.serialize());

  CostLedger copy;
  ASSERT_TRUE(copy.merge_image(image));
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_DOUBLE_EQ(copy.estimate("model:1f"), ledger.estimate("model:1f"));
  EXPECT_DOUBLE_EQ(copy.estimate("derive:1f:x"), ledger.estimate("derive:1f:x"));
  EXPECT_DOUBLE_EQ(copy.estimate("minimize:1f:x"), ledger.estimate("minimize:1f:x"));
  EXPECT_EQ(copy.serialize(), image);
}

TEST(CostLedger, DamagedImagesDegradeWithoutTouchingTheTable) {
  CostLedger source;
  source.observe("model:aa", 1.0);
  source.observe("derive:aa:q", 2.0);
  const std::string image = source.serialize();

  CostLedger target;
  target.observe("model:resident", 3.0);

  // Wrong magic (a JSON report, say).
  EXPECT_FALSE(CostLedger::is_ledger_image("{\"schema\": \"punt-table1-report\"}"));
  EXPECT_FALSE(target.merge_image("{\"schema\": \"punt-table1-report\"}"));
  // Truncation anywhere: header, payload, checksum.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, image.size() / 2,
        image.size() - 1}) {
    EXPECT_FALSE(target.merge_image(std::string_view(image).substr(0, keep)))
        << "truncated to " << keep << " byte(s)";
  }
  // A flipped payload byte fails the checksum.
  std::string corrupt = image;
  corrupt[13] = static_cast<char>(corrupt[13] ^ 0x40);
  EXPECT_FALSE(target.merge_image(corrupt));
  // A future format version is refused outright (no partial parse).
  std::string bumped = image;
  bumped[8] = static_cast<char>(bumped[8] + 1);  // u32 version, little-endian
  EXPECT_FALSE(target.merge_image(bumped));
  // Trailing garbage after the checksum.
  EXPECT_FALSE(target.merge_image(image + "x"));

  // Through it all, the resident table never changed.
  EXPECT_EQ(target.size(), 1u);
  EXPECT_DOUBLE_EQ(target.estimate("model:resident"), 3.0);

  // And the intact image still merges, replacing nothing it does not name.
  ASSERT_TRUE(target.merge_image(image));
  EXPECT_EQ(target.size(), 3u);
  EXPECT_DOUBLE_EQ(target.estimate("model:resident"), 3.0);
  EXPECT_DOUBLE_EQ(target.estimate("model:aa"), 1.0);
}

TEST(CostLedger, SaveAndLoadRoundTripThroughACacheDirectory) {
  const TempDir dir("saveload");
  const std::string cache_dir = (dir.path / "cache").string();
  const std::string path = CostLedger::path_in(cache_dir);
  EXPECT_EQ(path, cache_dir + "/" + CostLedger::kFileName);

  CostLedger empty;
  EXPECT_FALSE(empty.load(path)) << "a missing file loads as empty, reported false";
  EXPECT_EQ(empty.size(), 0u);

  CostLedger ledger;
  ledger.observe("model:5", 0.75);
  ledger.observe("minimize:5:s", 0.1);
  // save() creates the parent directory — a cold cache dir is the norm on
  // the very first --model-cache-dir run.
  ASSERT_TRUE(ledger.save(path));
  ASSERT_TRUE(fs::exists(path));
  EXPECT_EQ(slurp(path), ledger.serialize());
  // No temp files left behind by the unique-temp + rename publish.
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    EXPECT_EQ(entry.path().filename().string(), CostLedger::kFileName);
  }

  CostLedger loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.estimate("model:5"), 0.75);

  // A corrupt file on disk degrades to empty on the next load.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << "PUNTLEDGgarbage";
  CostLedger after_corruption;
  EXPECT_FALSE(after_corruption.load(path));
  EXPECT_EQ(after_corruption.size(), 0u);
}

TEST(CostLedger, EntryEstimateSumsModelAndPerSignalCosts) {
  const stg::Stg stg = stg::make_vme_bus();
  SynthesisOptions options;
  CostLedger ledger;
  EXPECT_EQ(ledger.entry_estimate(stg, options), 0.0) << "unknown entry weighs 0";

  const std::uint64_t model = CostLedger::model_digest(stg, options);
  const std::uint64_t entry = CostLedger::entry_digest(stg, options);
  ledger.observe(CostLedger::key_of("model", model), 1.0);
  double expected = 1.0;
  double per_signal = 0.25;
  for (const auto signal : stg.non_input_signals()) {
    ledger.observe(CostLedger::key_of("derive", entry, stg.signal_name(signal)),
                   per_signal);
    ledger.observe(CostLedger::key_of("minimize", entry, stg.signal_name(signal)),
                   per_signal / 2);
    expected += per_signal + per_signal / 2;
    per_signal *= 2;
  }
  EXPECT_DOUBLE_EQ(ledger.entry_estimate(stg, options), expected);
  // Input signals contribute nothing; a different-arch entry knows nothing.
  SynthesisOptions rs = options;
  rs.architecture = Architecture::RsLatch;
  EXPECT_DOUBLE_EQ(ledger.entry_estimate(stg, rs), 1.0)
      << "an arch sweep shares only the model cost";
}

TEST(CostLedger, ClearEmptiesTheTable) {
  CostLedger ledger;
  ledger.observe("model:9", 1.0);
  ASSERT_EQ(ledger.size(), 1u);
  ledger.clear();
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.estimate("model:9"), 0.0);
}

}  // namespace
}  // namespace punt::core
