// Tests for the `punt serve` daemon: protocol framing and JSON round-trips,
// byte-identity of daemon responses with direct invocation (N concurrent
// clients included), the warm-cache property a resident daemon exists for
// (second request = pure memory hit, zero rebuilds, zero disk loads),
// resilience to malformed/oversized frames, graceful shutdown draining
// in-flight work — and the TCP transport: endpoint-grammar parsing, the
// HMAC-SHA256 challenge–response handshake (refusals, fresh nonces, replay),
// byte-parity of TCP clients with Unix clients, and the per-connection
// handshake/idle deadlines.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/server/client.hpp"
#include "src/server/endpoint.hpp"
#include "src/server/protocol.hpp"
#include "src/server/server.hpp"
#include "src/server/service.hpp"
#include "src/stg/g_format.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"

namespace punt::server {
namespace {

namespace fs = std::filesystem;
using stg::Stg;

/// A fresh, unique temp directory per test (removed on destruction).
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("punt-server-test-" + tag + "-" +
             std::to_string(static_cast<unsigned long>(::getpid())));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path_, ignored);
  }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// start()s the server and runs serve() on a background thread; the
/// destructor stops and joins, so a failing test never hangs the suite.
struct RunningServer {
  explicit RunningServer(ServerOptions options) : server(std::move(options)) {
    server.start();
    thread = std::thread([this] { server.serve(); });
  }
  ~RunningServer() {
    server.request_stop();
    if (thread.joinable()) thread.join();
  }
  Server server;
  std::thread thread;
};

/// A raw connected socket, for driving the protocol below the Client layer
/// (split send/receive, deliberately broken frames).
int connect_raw(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof address), 0)
      << "cannot connect to " << path;
  return fd;
}

Request synth_request(const Stg& stg) {
  Request request;
  request.op = Op::Synth;
  request.g_text = stg::write_g(stg);
  return request;
}

/// The deterministic part of a synth response: everything but the
/// "# unfold ..." timing line (wall-clock numbers differ run to run).
std::string strip_timing(const std::string& text) {
  std::string out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size() - 1;
    const std::string_view line(text.data() + start, end - start + 1);
    if (line.rfind("# unfold ", 0) != 0) out.append(line);
    start = end + 1;
  }
  return out;
}

/// What a direct `punt synth <file.g>` prints to stdout, minus the timing
/// line — built from the same primitives the CLI uses, independently of the
/// server/service code under test.
std::string direct_synth_output(const Stg& stg) {
  const core::SynthesisResult result = core::synthesize(stg);
  const net::Netlist netlist = net::Netlist::from_synthesis(stg, result);
  char head[128];
  std::snprintf(head, sizeof head, "# %s: %zu signals, %zu literals\n",
                stg.name().c_str(), stg.signal_count(), netlist.literal_count());
  return std::string(head) + netlist.to_eqn();
}

// --- Protocol unit tests ------------------------------------------------------

TEST(ServerProtocol, RequestJsonRoundTrips) {
  Request request;
  request.op = Op::Synth;
  request.g_text = ".model x\n.inputs a\n";
  request.method = "exact";
  request.arch = "rs";
  request.minimize = false;
  request.eqn = true;
  request.verilog = true;
  const Request parsed = request_from_json(to_json(request));
  EXPECT_EQ(parsed.op, Op::Synth);
  EXPECT_EQ(parsed.g_text, request.g_text);
  EXPECT_EQ(parsed.method, "exact");
  EXPECT_EQ(parsed.arch, "rs");
  EXPECT_FALSE(parsed.minimize);
  EXPECT_TRUE(parsed.eqn);
  EXPECT_TRUE(parsed.verilog);

  for (const Op op : {Op::Check, Op::CacheStats, Op::Ping, Op::Shutdown}) {
    Request probe;
    probe.op = op;
    probe.g_text = op == Op::Check ? "text" : "";
    EXPECT_EQ(request_from_json(to_json(probe)).op, op);
  }
}

TEST(ServerProtocol, ResponseJsonRoundTrips) {
  Response response;
  response.ok = true;
  response.exit_code = 2;
  response.output = "line \"quoted\"\n";
  response.log = "summary\n";
  const Response parsed = response_from_json(to_json(response));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.exit_code, 2);
  EXPECT_EQ(parsed.output, response.output);
  EXPECT_EQ(parsed.log, response.log);

  Response refusal;
  refusal.error = "bad frame";
  const Response parsed_refusal = response_from_json(to_json(refusal));
  EXPECT_FALSE(parsed_refusal.ok);
  EXPECT_EQ(parsed_refusal.error, "bad frame");
}

TEST(ServerProtocol, MalformedRequestsAreRejected) {
  EXPECT_THROW((void)request_from_json("not json"), ParseError);
  EXPECT_THROW((void)request_from_json("[1,2]"), ParseError);
  EXPECT_THROW((void)request_from_json(R"({"op": "fry"})"), ParseError);
  EXPECT_THROW((void)request_from_json(R"({"op": "synth"})"), ParseError);  // no g
  EXPECT_THROW((void)request_from_json(R"({"op": "synth", "g": "x", "method": "vhdl"})"),
               ParseError);
  EXPECT_THROW((void)request_from_json(R"({"op": "synth", "g": "x", "arch": "fpga"})"),
               ParseError);
  EXPECT_THROW((void)request_from_json(R"({"op": "synth", "g": "x", "eqn": 1})"),
               ParseError);
}

TEST(ServerProtocol, FramesRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string body = R"({"op": "ping"})";
  write_frame(fds[1], body);
  std::string payload;
  EXPECT_EQ(read_frame(fds[0], payload), FrameStatus::Ok);
  EXPECT_EQ(payload, body);
  ::close(fds[1]);
  EXPECT_EQ(read_frame(fds[0], payload), FrameStatus::Eof);  // clean close
  ::close(fds[0]);
}

TEST(ServerProtocol, TruncatedAndOversizedFramesThrow) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Length prefix promising 100 bytes, then EOF after 3: mid-frame close.
  const unsigned char prefix[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds[1], prefix, 4), 4);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  ::close(fds[1]);
  std::string payload;
  EXPECT_THROW((void)read_frame(fds[0], payload), Error);
  ::close(fds[0]);

  // A length above the limit is refused before any body is buffered.
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  unsigned char huge_prefix[4] = {
      static_cast<unsigned char>(huge & 0xFF),
      static_cast<unsigned char>((huge >> 8) & 0xFF),
      static_cast<unsigned char>((huge >> 16) & 0xFF),
      static_cast<unsigned char>((huge >> 24) & 0xFF),
  };
  ASSERT_EQ(::write(fds[1], huge_prefix, 4), 4);
  try {
    (void)read_frame(fds[0], payload);
    FAIL() << "an oversized frame must be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos) << e.what();
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- Endpoint grammar ---------------------------------------------------------

TEST(ServerEndpoint, PlainTextIsAUnixSocketPath) {
  const Endpoint absolute = parse_endpoint("/tmp/punt.sock");
  EXPECT_EQ(absolute.transport, Transport::Unix);
  EXPECT_EQ(absolute.path, "/tmp/punt.sock");
  EXPECT_EQ(absolute.describe(), "/tmp/punt.sock");

  // Relative paths and colon-bearing names without the scheme stay Unix.
  EXPECT_EQ(parse_endpoint("punt.sock").transport, Transport::Unix);
  EXPECT_EQ(parse_endpoint("dir/with:colon.sock").transport, Transport::Unix);
}

TEST(ServerEndpoint, TcpAuthoritiesParse) {
  const Endpoint v4 = parse_endpoint("tcp://127.0.0.1:9000");
  EXPECT_EQ(v4.transport, Transport::Tcp);
  EXPECT_EQ(v4.host, "127.0.0.1");
  EXPECT_EQ(v4.port, 9000);
  EXPECT_EQ(v4.describe(), "tcp://127.0.0.1:9000");

  const Endpoint named = parse_endpoint("tcp://localhost:1");
  EXPECT_EQ(named.host, "localhost");
  EXPECT_EQ(named.port, 1);

  // IPv6 literals come bracketed and describe() re-brackets them.
  const Endpoint v6 = parse_endpoint("tcp://[::1]:65535");
  EXPECT_EQ(v6.transport, Transport::Tcp);
  EXPECT_EQ(v6.host, "::1");
  EXPECT_EQ(v6.port, 65535);
  EXPECT_EQ(v6.describe(), "tcp://[::1]:65535");
}

TEST(ServerEndpoint, MalformedTcpAuthoritiesAreRejected) {
  const char* const rejected[] = {
      "",                   // nothing at all
      "tcp://",             // scheme without an authority
      "tcp://:9",           // empty host
      "tcp://host",         // no port separator
      "tcp://host:",        // empty port
      "tcp://host:0",       // port 0 is not a *named* endpoint
      "tcp://host:65536",   // beyond the TCP port range
      "tcp://host:123456",  // too many digits
      "tcp://host:9x",      // non-numeric port
      "tcp://[::1:9",       // unterminated bracket
      "tcp://[::1]",        // bracket without ':port'
      "tcp://[::1]9",       // junk between ']' and the port
      "tcp://::1:9000",     // IPv6 literal without brackets
  };
  for (const char* text : rejected) {
    EXPECT_THROW((void)parse_endpoint(text), Error) << "'" << text << "'";
  }
}

// --- HMAC handshake (socketpair, below the Server layer) ----------------------

/// Runs server_handshake on a helper thread so the test can drive the
/// client side of the same socketpair synchronously.  The daemon ignores
/// SIGPIPE process-wide (Server::start); these below-the-Server tests must
/// do the same or a best-effort refusal to a closed peer kills the suite.
struct HandshakeServer {
  HandshakeServer(int fd, std::string token)
      : thread([this, fd, token = std::move(token)] {
          std::signal(SIGPIPE, SIG_IGN);
          ok = server_handshake(fd, token, why);
        }) {}
  void join() { thread.join(); }
  // `thread` is declared LAST: members initialize in declaration order, and
  // the lambda writes `ok`/`why`, which must be fully constructed before the
  // thread can start.
  bool ok = false;
  std::string why;
  std::thread thread;
};

/// Reads the server's challenge frame and returns its nonce.
std::string read_nonce(int fd) {
  std::string payload;
  EXPECT_EQ(read_frame(fd, payload), FrameStatus::Ok);
  const util::JsonValue root = util::parse_json(payload);
  EXPECT_EQ(util::json_string(root, "auth", "auth challenge"), "hmac-sha256");
  return util::json_string(root, "nonce", "auth challenge");
}

Response read_verdict(int fd) {
  std::string payload;
  EXPECT_EQ(read_frame(fd, payload), FrameStatus::Ok);
  return response_from_json(payload);
}

TEST(ServerHandshake, GoodTokenAuthenticates) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds), 0);
  HandshakeServer server(fds[0], "sesame");
  client_handshake(fds[1], "sesame");  // throws on refusal
  server.join();
  EXPECT_TRUE(server.ok) << server.why;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServerHandshake, WrongTokenIsRefused) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds), 0);
  HandshakeServer server(fds[0], "sesame");
  try {
    client_handshake(fds[1], "open-barley");
    FAIL() << "a wrong token must be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("refused"), std::string::npos) << e.what();
  }
  server.join();
  EXPECT_FALSE(server.ok);
  EXPECT_NE(server.why.find("MAC mismatch"), std::string::npos) << server.why;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServerHandshake, MalformedTruncatedAndVanishingAnswersAreRefused) {
  {
    // A syntactically broken answer frame: refused with a verdict.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds), 0);
    HandshakeServer server(fds[0], "t");
    (void)read_nonce(fds[1]);
    write_frame(fds[1], "not json");
    server.join();
    EXPECT_FALSE(server.ok);
    EXPECT_NE(server.why.find("malformed handshake answer"), std::string::npos)
        << server.why;
    const Response refusal = read_verdict(fds[1]);
    EXPECT_FALSE(refusal.ok);
    EXPECT_NE(refusal.error.find("unauthorized"), std::string::npos) << refusal.error;
    ::close(fds[0]);
    ::close(fds[1]);
  }
  {
    // An answer frame that promises more bytes than ever arrive.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds), 0);
    HandshakeServer server(fds[0], "t");
    (void)read_nonce(fds[1]);
    const unsigned char prefix[4] = {50, 0, 0, 0};
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);
    ASSERT_EQ(::write(fds[1], "abc", 3), 3);
    ::close(fds[1]);
    server.join();
    EXPECT_FALSE(server.ok);
    ::close(fds[0]);
  }
  {
    // A peer that takes the challenge and vanishes without answering: no
    // verdict owed (reading first makes the EOF — not a failed challenge
    // write — the thing the server observes).
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds), 0);
    HandshakeServer server(fds[0], "t");
    (void)read_nonce(fds[1]);
    ::close(fds[1]);
    server.join();
    EXPECT_FALSE(server.ok);
    EXPECT_NE(server.why.find("peer closed"), std::string::npos) << server.why;
    ::close(fds[0]);
  }
}

TEST(ServerHandshake, NoncesAreFreshAndReplayedMacsAreRefused) {
  const std::string token = "rotate-me";

  // Connection one: an honest exchange, whose MAC we keep for the replay.
  int first[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, first), 0);
  HandshakeServer server_one(first[0], token);
  const std::string nonce_one = read_nonce(first[1]);
  const std::string mac_one = auth_mac_hex(token, nonce_one);
  write_frame(first[1], "{\"mac\": \"" + mac_one + "\"}");
  server_one.join();
  EXPECT_TRUE(server_one.ok) << server_one.why;
  EXPECT_TRUE(read_verdict(first[1]).ok);

  // Connection two: a fresh nonce, so the captured MAC no longer verifies.
  int second[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, second), 0);
  HandshakeServer server_two(second[0], token);
  const std::string nonce_two = read_nonce(second[1]);
  EXPECT_NE(nonce_one, nonce_two) << "challenges must be fresh per connection";
  write_frame(second[1], "{\"mac\": \"" + mac_one + "\"}");  // the replay
  server_two.join();
  EXPECT_FALSE(server_two.ok) << "a MAC for yesterday's nonce must not authenticate";
  EXPECT_NE(server_two.why.find("MAC mismatch"), std::string::npos) << server_two.why;
  ::close(first[0]);
  ::close(first[1]);
  ::close(second[0]);
  ::close(second[1]);
}

// --- Server end-to-end --------------------------------------------------------

TEST(Server, PingPongAndCacheStats) {
  TempDir dir("ping");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  RunningServer running(options);

  const Response pong = request_once(socket, Request{});
  EXPECT_EQ(pong.exit_code, 0);
  EXPECT_EQ(pong.output, "pong\n");

  Request stats_request;
  stats_request.op = Op::CacheStats;
  const Response stats = request_once(socket, stats_request);
  const util::JsonValue root = util::parse_json(stats.output);
  EXPECT_EQ(util::json_string(root, "schema", "stats"), "punt-serve-stats");
  // The ping (the served-count bumps just after its response is written, so
  // an immediately following request may still read 0 — don't pin it).
  EXPECT_LE(util::json_count(root, "requests", "stats"), 1u);
  EXPECT_EQ(util::json_count(root, "builds", "stats"), 0u);
  // Transport provenance (stats v3): a Unix daemon says so, with zero auth
  // counters — the handshake never runs on this transport.
  EXPECT_EQ(util::json_string(root, "transport", "stats"), "unix");
  EXPECT_EQ(util::json_string(root, "listen", "stats"), socket);
  EXPECT_GE(util::json_count(root, "connections", "stats"), 1u);
  EXPECT_EQ(util::json_count(root, "auth_failures", "stats"), 0u);
  EXPECT_EQ(util::json_count(root, "idle_timeouts", "stats"), 0u);
}

TEST(Server, ConcurrentClientsMatchDirectInvocationByteForByte) {
  TempDir dir("concurrent");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  options.jobs = 2;
  RunningServer running(options);

  // Four distinct STGs, each requested by two clients at once: eight
  // concurrent connections funnel through the one resident cache and pool.
  const std::vector<Stg> stgs = {stg::make_paper_fig1(), stg::make_muller_pipeline(3),
                                 stg::make_paper_fig4ab(),
                                 stg::make_counterflow_pipeline(2)};
  std::vector<std::string> expected;
  for (const Stg& stg : stgs) expected.push_back(direct_synth_output(stg));

  constexpr int kClientsPerStg = 2;
  std::vector<std::thread> clients;
  std::vector<std::string> got(stgs.size() * kClientsPerStg);
  std::atomic<int> failures{0};
  for (std::size_t i = 0; i < got.size(); ++i) {
    clients.emplace_back([&, i] {
      try {
        const Response response =
            request_once(socket, synth_request(stgs[i % stgs.size()]));
        if (response.exit_code != 0) failures.fetch_add(1);
        got[i] = response.output;
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  ASSERT_EQ(failures.load(), 0);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(strip_timing(got[i]), expected[i % stgs.size()])
        << "client " << i << " diverged from the direct invocation";
  }
}

TEST(Server, SecondRequestOnAWarmDaemonIsAPureMemoryHit) {
  TempDir dir("warm");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  options.model_cache_dir = dir.str() + "/models";  // disk tier attached...
  RunningServer running(options);

  const Stg stg = stg::make_paper_fig1();
  const Response first = request_once(socket, synth_request(stg));
  EXPECT_EQ(first.exit_code, 0);
  const core::ModelCacheStats after_first = running.server.cache().stats();
  EXPECT_EQ(after_first.builds, 1u);

  const Response second = request_once(socket, synth_request(stg));
  EXPECT_EQ(second.exit_code, 0);
  EXPECT_EQ(strip_timing(second.output), strip_timing(first.output));

  // The acceptance criterion: zero phase-1 rebuilds AND zero disk loads —
  // the resident memory tier answered.
  const core::ModelCacheStats delta =
      core::delta_stats(after_first, running.server.cache().stats());
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.builds, 0u) << "a warm daemon must not rebuild phase 1";
  EXPECT_EQ(delta.disk_hits, 0u) << "...nor deserialise from the disk tier";
  EXPECT_EQ(delta.misses, 0u);
  // The per-request summary the client streams to stderr says the same.
  EXPECT_NE(second.log.find("1 memory hit(s)"), std::string::npos) << second.log;
  EXPECT_NE(second.log.find("0 rebuild(s)"), std::string::npos) << second.log;
}

TEST(Server, CheckReportsItsOwnRequestsCacheDelta) {
  TempDir dir("check");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  RunningServer running(options);

  Request request;
  request.op = Op::Check;
  request.g_text = stg::write_g(stg::make_paper_fig1());

  // Cold daemon: the verdict matches a direct `punt check` (fresh cache):
  // one build, one reuse from the embedded synthesis run.
  const Response cold = request_once(socket, request);
  EXPECT_EQ(cold.exit_code, 0);
  EXPECT_NE(cold.output.find("complete state coding       : yes"), std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("built 1 time(s), reused 1 time(s)"), std::string::npos)
      << cold.output;

  // Warm daemon: the same request truthfully reports zero builds — the
  // line is this request's delta, not the daemon's lifetime counters.
  const Response warm = request_once(socket, request);
  EXPECT_EQ(warm.exit_code, 0);
  EXPECT_NE(warm.output.find("built 0 time(s), reused 2 time(s)"), std::string::npos)
      << warm.output;
}

TEST(Server, SynthesisFailuresAnswerLikeTheCliAndKeepServing) {
  TempDir dir("csc");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  RunningServer running(options);

  // vme has a genuine CSC conflict: the daemon answers exit 2 with the
  // CLI's diagnostic — and must survive to serve the next request.
  const Response conflicted = request_once(socket, synth_request(stg::make_vme_bus()));
  EXPECT_EQ(conflicted.exit_code, 2);
  EXPECT_NE(conflicted.log.find("CSC conflict"), std::string::npos) << conflicted.log;

  Request broken;
  broken.op = Op::Synth;
  broken.g_text = "this is not a .g file";
  const Response unparseable = request_once(socket, broken);
  EXPECT_EQ(unparseable.exit_code, 2);
  EXPECT_NE(unparseable.log.find("error: "), std::string::npos) << unparseable.log;

  const Response pong = request_once(socket, Request{});
  EXPECT_EQ(pong.output, "pong\n");
}

TEST(Server, LintRefusesBrokenSpecsBeforeAdmission) {
  TempDir dir("lint");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  RunningServer running(options);

  // A structurally broken spec (duplicate declaration = error-severity lint
  // finding) is refused by the admission gate with the full lint rendering —
  // rule id, line:column, caret — and never reaches the batcher, while a
  // concurrent valid request is served normally.
  Request broken;
  broken.op = Op::Synth;
  broken.g_text =
      ".model x\n.inputs a a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p }\n.init_values a=0\n.end\n";
  Response valid;
  std::thread concurrent(
      [&] { valid = request_once(socket, synth_request(stg::make_paper_fig1())); });
  const Response refused = request_once(socket, broken);
  concurrent.join();

  EXPECT_TRUE(refused.ok);  // protocol-level refusal, not a transport error
  EXPECT_EQ(refused.exit_code, 2);
  EXPECT_NE(refused.log.find("[STG001]"), std::string::npos) << refused.log;
  EXPECT_NE(refused.log.find(":2:11"), std::string::npos) << refused.log;
  EXPECT_NE(refused.log.find("refused by lint"), std::string::npos) << refused.log;
  EXPECT_NE(refused.log.find("error: "), std::string::npos) << refused.log;

  EXPECT_EQ(valid.exit_code, 0);
  EXPECT_NE(valid.output.find("literals"), std::string::npos);
  // Only the valid request was admitted into the batcher; the refused one
  // was answered pre-admission.
  EXPECT_EQ(running.server.batcher_stats().admitted, 1u);
}

TEST(Server, MalformedAndOversizedFramesDoNotKillTheServer) {
  TempDir dir("frames");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  RunningServer running(options);

  {
    // Valid frame, invalid JSON: a protocol refusal, connection closed.
    const int fd = connect_raw(socket);
    write_frame(fd, "this is not JSON");
    std::string payload;
    ASSERT_EQ(read_frame(fd, payload), FrameStatus::Ok);
    const Response refusal = response_from_json(payload);
    EXPECT_FALSE(refusal.ok);
    EXPECT_FALSE(refusal.error.empty());
    ::close(fd);
  }
  {
    // Oversized length prefix: refused without buffering the body.
    const int fd = connect_raw(socket);
    const std::uint32_t huge = kMaxFrameBytes + 7;
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(huge & 0xFF),
        static_cast<unsigned char>((huge >> 8) & 0xFF),
        static_cast<unsigned char>((huge >> 16) & 0xFF),
        static_cast<unsigned char>((huge >> 24) & 0xFF),
    };
    ASSERT_EQ(::write(fd, prefix, 4), 4);
    std::string payload;
    ASSERT_EQ(read_frame(fd, payload), FrameStatus::Ok);
    const Response refusal = response_from_json(payload);
    EXPECT_FALSE(refusal.ok);
    EXPECT_NE(refusal.error.find("exceeds"), std::string::npos) << refusal.error;
    ::close(fd);
  }
  {
    // A peer that connects and vanishes costs the server nothing.
    const int fd = connect_raw(socket);
    ::close(fd);
  }
  // After all three abuses, an honest client still gets served.
  const Response pong = request_once(socket, Request{});
  EXPECT_EQ(pong.output, "pong\n");
}

TEST(Server, ClientsInOneWindowFuseIntoOneUnionBatch) {
  TempDir dir("fuse");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  options.jobs = 2;
  options.batch_window_ms = 1000;  // generous: absorbs CI scheduling skew
  RunningServer running(options);

  // Two distinct STGs, each requested twice, all inside one window: the
  // daemon must run them as ONE union graph — one model build per distinct
  // key — and still answer each client byte-identically to a direct run.
  const std::vector<Stg> stgs = {stg::make_paper_fig1(), stg::make_paper_fig1(),
                                 stg::make_muller_pipeline(3),
                                 stg::make_muller_pipeline(3)};
  std::vector<std::string> expected;
  for (const Stg& stg : stgs) expected.push_back(direct_synth_output(stg));

  std::vector<std::thread> clients;
  std::vector<Response> got(stgs.size());
  std::atomic<int> failures{0};
  for (std::size_t i = 0; i < stgs.size(); ++i) {
    clients.emplace_back([&, i] {
      try {
        got[i] = request_once(socket, synth_request(stgs[i]));
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  ASSERT_EQ(failures.load(), 0);

  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].exit_code, 0) << got[i].log;
    EXPECT_EQ(strip_timing(got[i].output), expected[i])
        << "fused client " << i << " diverged from the direct invocation";
    // Each member carries the fused batch's cache-delta summary.
    EXPECT_NE(got[i].log.find("2 rebuild(s)"), std::string::npos) << got[i].log;
  }
  const BatcherStats stats = running.server.batcher_stats();
  EXPECT_EQ(stats.batches, 1u) << "the window should have fused all four";
  EXPECT_EQ(stats.fused_requests, 4u);
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(stats.shed(), 0u);
  // One phase-1 build per distinct STG, not per request.
  EXPECT_EQ(running.server.cache().stats().builds, 2u);
}

TEST(Server, OverloadedSynthRequestsAreShedAtTheSocket) {
  TempDir dir("shed");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  options.batch_window_ms = 30000;  // park admitted work until the drain
  options.max_queue = 1;
  RunningServer running(options);

  // Client A fills the queue (blocks until the shutdown drain flushes it).
  std::thread client_a([&] {
    const Response response = request_once(socket, synth_request(stg::make_paper_fig1()));
    EXPECT_EQ(response.exit_code, 0) << response.log;
  });
  while (running.server.batcher_stats().admitted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Client B is refused with the protocol-level "overloaded" error — which
  // the Client surfaces as a throw, exactly like any other refusal.
  try {
    (void)request_once(socket, synth_request(stg::make_paper_fig1()));
    FAIL() << "the second synth request must be shed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("overloaded"), std::string::npos) << e.what();
  }
  EXPECT_EQ(running.server.batcher_stats().shed_queue_full, 1u);

  // A non-synth request still gets through: shedding is admission control
  // on synthesis work, not a dead daemon.
  EXPECT_EQ(request_once(socket, Request{}).output, "pong\n");

  // The shutdown drain completes A's admitted request.
  running.server.request_stop();
  running.thread.join();
  client_a.join();
  EXPECT_EQ(running.server.batcher_stats().admitted, 1u);
}

TEST(Server, CacheStatsReportsFusionCounters) {
  TempDir dir("fstats");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);  // default 2ms window
  RunningServer running(options);

  const Stg stg = stg::make_paper_fig1();
  (void)request_once(socket, synth_request(stg));
  (void)request_once(socket, synth_request(stg));

  Request stats_request;
  stats_request.op = Op::CacheStats;
  const Response stats = request_once(socket, stats_request);
  const util::JsonValue root = util::parse_json(stats.output);
  EXPECT_EQ(util::json_string(root, "schema", "stats"), "punt-serve-stats");
  EXPECT_EQ(util::json_count(root, "version", "stats"), 3u);
  EXPECT_EQ(util::json_number(root, "batch_window_ms", "stats"), 2.0);
  EXPECT_GE(util::json_count(root, "admitted", "stats"), 2u);
  EXPECT_GE(util::json_count(root, "batches", "stats"), 1u);
  EXPECT_GE(util::json_count(root, "fused_requests", "stats"), 2u);
  EXPECT_EQ(util::json_count(root, "shed_queue_full", "stats"), 0u);
  const util::JsonValue* histogram = root.find("batch_size_histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->type, util::JsonValue::Type::Array);
  EXPECT_EQ(histogram->array.size(), BatcherStats::kHistogramBuckets);
}

TEST(Server, ZeroWindowDisablesFusionButKeepsTheStatsSchema) {
  TempDir dir("nofuse");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  options.batch_window_ms = 0;  // the pre-fusion daemon
  RunningServer running(options);

  const Response synth = request_once(socket, synth_request(stg::make_paper_fig1()));
  EXPECT_EQ(synth.exit_code, 0);

  Request stats_request;
  stats_request.op = Op::CacheStats;
  const Response stats = request_once(socket, stats_request);
  const util::JsonValue root = util::parse_json(stats.output);
  // Same schema, fusion counters pinned to zero — consumers need not care
  // how the daemon was started.
  EXPECT_EQ(util::json_count(root, "version", "stats"), 3u);
  EXPECT_EQ(util::json_number(root, "batch_window_ms", "stats"), 0.0);
  EXPECT_EQ(util::json_count(root, "batches", "stats"), 0u);
  EXPECT_EQ(util::json_count(root, "fused_requests", "stats"), 0u);
  EXPECT_EQ(running.server.batcher_stats().admitted, 0u);
}

TEST(Server, GracefulShutdownDrainsInFlightWork) {
  TempDir dir("drain");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);
  options.jobs = 2;
  Server server(options);
  server.start();
  std::thread serving([&server] { server.serve(); });

  // Client A: send a synthesis request but do not read the response yet.
  const int fd = connect_raw(socket);
  write_frame(fd, to_json(synth_request(stg::make_muller_pipeline(4))));
  // Deterministically order the shutdown *behind* A being in flight.
  while (server.active_connections() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Client B: shutdown.  The ack arrives before the drain completes.
  Request shutdown;
  shutdown.op = Op::Shutdown;
  const Response ack = request_once(socket, shutdown);
  EXPECT_EQ(ack.exit_code, 0);

  // A's response must still arrive complete: the drain waits for it.
  std::string payload;
  ASSERT_EQ(read_frame(fd, payload), FrameStatus::Ok);
  const Response result = response_from_json(payload);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_FALSE(result.output.empty());
  ::close(fd);

  serving.join();  // serve() returned: drained and unlinked
  EXPECT_FALSE(fs::exists(socket));
  EXPECT_THROW(Client probe(socket), Error);
}

TEST(Server, StaleSocketFileIsReclaimedAndLiveOneIsRefused) {
  TempDir dir("stale");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions options;
  options.endpoint = unix_endpoint(socket);

  {
    // A dead file at the path (a crashed server's leftover): reclaimed.
    std::ofstream(socket) << "";
    ASSERT_TRUE(fs::exists(socket));
    RunningServer running(options);
    const Response pong = request_once(socket, Request{});
    EXPECT_EQ(pong.output, "pong\n");

    // A *live* server on the path: a second one must refuse to start.
    Server rival(options);
    EXPECT_THROW(rival.start(), Error);
  }
}

// --- TCP transport ------------------------------------------------------------

TEST(Server, TcpListenerWithoutATokenRefusesToStart) {
  ServerOptions options;
  options.endpoint = tcp_endpoint("127.0.0.1", 0);
  Server server(options);
  try {
    server.start();
    FAIL() << "an unauthenticated TCP listener must be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--token-file"), std::string::npos)
        << e.what();
  }
}

TEST(Server, TcpClientMatchesUnixClientByteForByte) {
  TempDir dir("tcp-parity");
  const std::string socket = dir.str() + "/punt.sock";
  ServerOptions unix_options;
  unix_options.endpoint = unix_endpoint(socket);
  RunningServer unix_running(unix_options);

  ServerOptions tcp_options;
  tcp_options.endpoint = tcp_endpoint("127.0.0.1", 0);  // ephemeral port
  tcp_options.token = "tcp-parity-token";
  RunningServer tcp_running(tcp_options);
  const Endpoint bound = tcp_running.server.endpoint();
  EXPECT_GT(bound.port, 0) << "open() must learn the kernel-assigned port";

  const Stg stg = stg::make_paper_fig1();
  const Response via_unix = request_once(socket, synth_request(stg));
  const Response via_tcp = request_once(bound, tcp_options.token, synth_request(stg));
  EXPECT_EQ(via_unix.exit_code, 0);
  EXPECT_EQ(via_tcp.exit_code, 0);
  EXPECT_EQ(strip_timing(via_tcp.output), strip_timing(via_unix.output))
      << "the TCP transport altered the response bytes";
  EXPECT_EQ(strip_timing(via_tcp.output), direct_synth_output(stg));
}

TEST(Server, TcpRequiresAuthAndCountsRejects) {
  ServerOptions options;
  options.endpoint = tcp_endpoint("127.0.0.1", 0);
  options.token = "right-token";
  RunningServer running(options);
  const Endpoint bound = running.server.endpoint();

  // Wrong token: refused at the handshake, surfaced as a client-side throw.
  try {
    (void)request_once(bound, "wrong-token", Request{});
    FAIL() << "a wrong token must be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("refused"), std::string::npos) << e.what();
  }
  // Missing token: the client still answers the challenge (with an
  // empty-key MAC), so this is a server-side refusal too, not a hang.
  EXPECT_THROW((void)request_once(bound, "", Request{}), Error);

  // The refusal frame races the server-side counter bump; wait it out.
  while (running.server.auth_failures() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The right token gets through, and stats v3 carries the reject counters.
  Request stats_request;
  stats_request.op = Op::CacheStats;
  const Response stats = request_once(bound, options.token, stats_request);
  const util::JsonValue root = util::parse_json(stats.output);
  EXPECT_EQ(util::json_count(root, "version", "stats"), 3u);
  EXPECT_EQ(util::json_string(root, "transport", "stats"), "tcp");
  EXPECT_EQ(util::json_string(root, "listen", "stats"), bound.describe());
  EXPECT_EQ(util::json_count(root, "auth_failures", "stats"), 2u);
  EXPECT_GE(util::json_count(root, "connections", "stats"), 3u);
}

TEST(Server, TcpHandshakeTimeoutFreesTheHandler) {
  ServerOptions options;
  options.endpoint = tcp_endpoint("127.0.0.1", 0);
  options.token = "t";
  options.handshake_timeout_seconds = 0.2;
  RunningServer running(options);

  // Connect and say nothing: the server must expire the handshake instead
  // of parking a handler thread on a silent off-host peer forever.
  const int fd = connect_endpoint(running.server.endpoint());
  while (running.server.auth_failures() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The expiry is delivered as an unauthorized refusal before the close.
  std::string payload;
  ASSERT_EQ(read_frame(fd, payload), FrameStatus::Ok);  // the challenge
  ASSERT_EQ(read_frame(fd, payload), FrameStatus::Ok);  // the refusal
  const Response refusal = response_from_json(payload);
  EXPECT_FALSE(refusal.ok);
  EXPECT_NE(refusal.error.find("deadline"), std::string::npos) << refusal.error;
  ::close(fd);

  // An honest client is still served afterwards.
  EXPECT_EQ(request_once(running.server.endpoint(), "t", Request{}).output, "pong\n");
}

TEST(Server, TcpIdleTimeoutClosesAQuietConnection) {
  ServerOptions options;
  options.endpoint = tcp_endpoint("127.0.0.1", 0);
  options.token = "t";
  options.idle_timeout_seconds = 0.2;
  RunningServer running(options);

  Client client(running.server.endpoint(), "t");
  EXPECT_EQ(client.request(Request{}).output, "pong\n");  // inside the window

  // Then go quiet past the deadline: the daemon counts the expiry, sends an
  // explanatory refusal and closes; the next request on this connection
  // surfaces that as a throw.
  while (running.server.idle_timeouts() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_THROW((void)client.request(Request{}), Error);

  // A fresh connection is served fine — the deadline is per connection.
  EXPECT_EQ(request_once(running.server.endpoint(), "t", Request{}).output, "pong\n");
}

TEST(Server, SecondTcpServerOnTheSamePortIsRefused) {
  ServerOptions options;
  options.endpoint = tcp_endpoint("127.0.0.1", 0);
  options.token = "t";
  RunningServer running(options);

  // The kernel arbitrates TCP ownership: binding the taken port must fail
  // even though no lock file exists for this transport.
  ServerOptions rival_options;
  rival_options.endpoint = running.server.endpoint();
  rival_options.token = "t";
  Server rival(rival_options);
  try {
    rival.start();
    FAIL() << "two daemons cannot share one TCP port";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot listen"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace punt::server
