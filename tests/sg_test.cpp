// Unit tests for the State Graph: reachability, codes, regions, checks.
// The Fig. 1 example from the paper is the reference: 8 states, known codes,
// On(b) = {100,110,101,111,011,001}, Off(b) = {010,000}.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::sg {
namespace {

using stg::SignalId;
using stg::Stg;

std::set<std::string> code_strings(const StateGraph& sg,
                                   const std::vector<std::size_t>& states) {
  std::set<std::string> out;
  for (const std::size_t s : states) out.insert(stg::code_to_string(sg.code(s)));
  return out;
}

TEST(StateGraph, PaperFig1HasEightStates) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  EXPECT_EQ(sg.state_count(), 8u);
  std::set<std::string> codes;
  for (std::size_t s = 0; s < sg.state_count(); ++s) {
    codes.insert(stg::code_to_string(sg.code(s)));
  }
  EXPECT_EQ(codes, (std::set<std::string>{"000", "100", "110", "101", "111", "011",
                                          "001", "010"}));
}

TEST(StateGraph, PaperFig1OnOffSetsOfB) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  const SignalId b = *stg.find_signal("b");
  EXPECT_EQ(code_strings(sg, sg.on_set(b)),
            (std::set<std::string>{"100", "110", "101", "111", "011", "001"}));
  EXPECT_EQ(code_strings(sg, sg.off_set(b)), (std::set<std::string>{"010", "000"}));
}

TEST(StateGraph, PaperFig1ExcitationRegions) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  const SignalId b = *stg.find_signal("b");
  // ER(+b): states where some b+ instance is enabled: (p2,p3)=100,
  // (p2,p6,p8)=101 for b+, and (p4)=001 for b+/2.
  EXPECT_EQ(code_strings(sg, sg.excitation_region(b, true, stg)),
            (std::set<std::string>{"100", "101", "001"}));
  // ER(-b): only (p9)=010.
  EXPECT_EQ(code_strings(sg, sg.excitation_region(b, false, stg)),
            (std::set<std::string>{"010"}));
}

TEST(StateGraph, ImpliedValueFlipsWhenExcited) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  const SignalId b = *stg.find_signal("b");
  // Initial state 000: b=0, b not excited (no b+ enabled at p1).
  EXPECT_EQ(sg.implied_value(sg.initial_state(), b), 0);
}

TEST(StateGraph, ArcCountMatchesEdges) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  // Paper Fig. 1(c) has 10 SG edges.
  EXPECT_EQ(sg.arc_count(), 10u);
}

TEST(StateGraph, StateBudgetEnforced) {
  const Stg stg = stg::make_muller_pipeline(6);
  BuildOptions options;
  options.state_budget = 5;
  EXPECT_THROW(StateGraph::build(stg, options), CapacityError);
}

TEST(StateGraph, UnsafeNetDetected) {
  // Two producers into one place with both sources marked -> 2 tokens.
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const SignalId b = stg.add_signal("b", stg::SignalKind::Output);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  const auto b_up = stg.add_transition(b, stg::Polarity::Rise);
  const auto a_dn = stg.add_transition(a, stg::Polarity::Fall);
  const auto b_dn = stg.add_transition(b, stg::Polarity::Fall);
  auto& net = stg.net();
  const auto p0 = net.add_place("p0");
  const auto p1 = net.add_place("p1");
  const auto shared = net.add_place("shared");
  const auto sink = net.add_place("sink");
  const auto sink2 = net.add_place("sink2");
  net.add_arc(p0, a_up);
  net.add_arc(p1, b_up);
  net.add_arc(a_up, shared);
  net.add_arc(b_up, shared);
  net.add_arc(shared, a_dn);
  net.add_arc(a_dn, sink);
  net.add_arc(shared, b_dn);
  net.add_arc(b_dn, sink2);
  net.set_initial_tokens(p0, 1);
  net.set_initial_tokens(p1, 1);
  EXPECT_THROW(StateGraph::build(stg), CapacityError);
}

TEST(StateGraph, MullerPipelineGrowsWithStages) {
  const std::size_t s2 = StateGraph::build(stg::make_muller_pipeline(2)).state_count();
  const std::size_t s4 = StateGraph::build(stg::make_muller_pipeline(4)).state_count();
  const std::size_t s6 = StateGraph::build(stg::make_muller_pipeline(6)).state_count();
  EXPECT_LT(s2, s4);
  EXPECT_LT(s4, s6);
  // Exponential-ish growth: doubling stages should much more than double states.
  EXPECT_GT(s6, 2 * s4);
}

TEST(StateGraph, InconsistentStgRejected) {
  // a+ fires twice along one path with no intervening a-.
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const auto up1 = stg.add_transition(a, stg::Polarity::Rise);
  const auto up2 = stg.add_transition(a, stg::Polarity::Rise);
  auto& net = stg.net();
  const auto p = net.add_place("p");
  const auto q = net.add_place("q");
  const auto r = net.add_place("r");
  net.add_arc(p, up1);
  net.add_arc(up1, q);
  net.add_arc(q, up2);
  net.add_arc(up2, r);
  net.set_initial_tokens(p, 1);
  EXPECT_THROW(StateGraph::build(stg), ImplementabilityError);
}

TEST(Analysis, PaperFig1IsPersistent) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  EXPECT_TRUE(persistency_violations(stg, sg).empty());
}

TEST(Analysis, PaperFig1HasCscAndUsc) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  EXPECT_TRUE(csc_violations(stg, sg).empty());
  EXPECT_TRUE(has_unique_state_coding(sg));
}

TEST(Analysis, VmeBusHasCscViolation) {
  const Stg stg = stg::make_vme_bus();
  const StateGraph sg = StateGraph::build(stg);
  const auto violations = csc_violations(stg, sg);
  ASSERT_FALSE(violations.empty());
  // The classic conflict involves the data-path signal d.
  bool mentions_d = false;
  for (const auto& v : violations) {
    for (const SignalId s : v.conflicting) {
      if (stg.signal_name(s) == "d") mentions_d = true;
    }
  }
  EXPECT_TRUE(mentions_d);
  EXPECT_FALSE(violations.front().describe(stg, sg).empty());
}

TEST(Analysis, VmeBusIsStillPersistent) {
  // CSC violation does not imply persistency violation.
  const Stg stg = stg::make_vme_bus();
  const StateGraph sg = StateGraph::build(stg);
  EXPECT_TRUE(persistency_violations(stg, sg).empty());
}

TEST(Analysis, OutputChoiceViolatesPersistency) {
  // A choice place feeding two *output* transitions: firing one disables
  // the other -> semi-modularity violation.
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const SignalId b = stg.add_signal("b", stg::SignalKind::Output);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  const auto b_up = stg.add_transition(b, stg::Polarity::Rise);
  const auto a_dn = stg.add_transition(a, stg::Polarity::Fall);
  const auto b_dn = stg.add_transition(b, stg::Polarity::Fall);
  auto& net = stg.net();
  const auto choice = net.add_place("choice");
  net.add_arc(choice, a_up);
  net.add_arc(choice, b_up);
  const auto pa = net.add_place("pa");
  const auto pb = net.add_place("pb");
  net.add_arc(a_up, pa);
  net.add_arc(pa, a_dn);
  net.add_arc(b_up, pb);
  net.add_arc(pb, b_dn);
  net.add_arc(a_dn, choice);
  net.add_arc(b_dn, choice);
  net.set_initial_tokens(choice, 1);
  const StateGraph sg = StateGraph::build(stg);
  const auto violations = persistency_violations(stg, sg);
  ASSERT_FALSE(violations.empty());
  EXPECT_FALSE(violations.front().describe(stg).empty());
}

TEST(Analysis, InputChoiceIsAllowed) {
  // Same shape but with *input* signals choosing: no violation reported.
  const Stg stg = stg::make_paper_fig1();  // choice between inputs a+ and c+/2
  const StateGraph sg = StateGraph::build(stg);
  EXPECT_TRUE(persistency_violations(stg, sg).empty());
}

TEST(Analysis, OnCoverMatchesPaper) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  const SignalId b = *stg.find_signal("b");
  const logic::Cover on = on_cover(sg, b);
  EXPECT_EQ(on.cube_count(), 6u);
  const logic::Cover off = off_cover(sg, b);
  EXPECT_EQ(off.cube_count(), 2u);
  EXPECT_FALSE(on.intersects(off));
}

TEST(Analysis, ErCoverMatchesRegions) {
  const Stg stg = stg::make_paper_fig1();
  const StateGraph sg = StateGraph::build(stg);
  const SignalId b = *stg.find_signal("b");
  const logic::Cover er_plus = er_cover(stg, sg, b, true);
  EXPECT_EQ(er_plus.cube_count(), 3u);  // 100, 101, 001
  const logic::Cover er_minus = er_cover(stg, sg, b, false);
  EXPECT_EQ(er_minus.cube_count(), 1u);  // 010
}

TEST(Analysis, MullerPipelineIsCleen) {
  const Stg stg = stg::make_muller_pipeline(3);
  const StateGraph sg = StateGraph::build(stg);
  EXPECT_TRUE(persistency_violations(stg, sg).empty());
  EXPECT_TRUE(csc_violations(stg, sg).empty());
}

}  // namespace
}  // namespace punt::sg
