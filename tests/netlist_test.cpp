// Netlist assembly, writers and the conformance verifier.
#include <gtest/gtest.h>

#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::net {
namespace {

using core::Architecture;
using core::Method;
using core::SynthesisOptions;
using core::synthesize;
using stg::Stg;

SynthesisOptions with(Method m, Architecture a = Architecture::ComplexGate) {
  SynthesisOptions options;
  options.method = m;
  options.architecture = a;
  return options;
}

TEST(Netlist, Fig1ComplexGateAssembly) {
  const Stg stg = stg::make_paper_fig1();
  const auto result = synthesize(stg, with(Method::UnfoldingApprox));
  const Netlist netlist = Netlist::from_synthesis(stg, result);
  ASSERT_EQ(netlist.gates().size(), 1u);
  EXPECT_EQ(netlist.literal_count(), result.literal_count());
  const Gate& gate = netlist.gate_for(*stg.find_signal("b"));
  EXPECT_EQ(gate.kind, Gate::Kind::ComplexGate);
}

TEST(Netlist, Fig1NextValueMatchesGate) {
  const Stg stg = stg::make_paper_fig1();
  const auto result = synthesize(stg, with(Method::UnfoldingApprox));
  const Netlist netlist = Netlist::from_synthesis(stg, result);
  const stg::SignalId b = *stg.find_signal("b");
  // On-set state 100 -> gate drives 1; off-set state 000 -> drives 0.
  EXPECT_TRUE(netlist.next_value(b, {1, 0, 0}));
  EXPECT_FALSE(netlist.next_value(b, {0, 0, 0}));
}

TEST(Netlist, EqnWriterMentionsEverySignal) {
  const Stg stg = stg::make_muller_pipeline(3);
  const auto result = synthesize(stg, with(Method::UnfoldingApprox));
  const Netlist netlist = Netlist::from_synthesis(stg, result);
  const std::string eqn = netlist.to_eqn();
  for (const stg::SignalId s : stg.non_input_signals()) {
    EXPECT_NE(eqn.find(stg.signal_name(s) + " ="), std::string::npos) << eqn;
  }
}

TEST(Netlist, EqnWriterLatchArchitecture) {
  const Stg stg = stg::make_paper_fig1();
  const auto result = synthesize(stg, with(Method::StateGraph, Architecture::StandardC));
  const Netlist netlist = Netlist::from_synthesis(stg, result);
  const std::string eqn = netlist.to_eqn();
  EXPECT_NE(eqn.find("set(b)"), std::string::npos);
  EXPECT_NE(eqn.find("reset(b)"), std::string::npos);
  EXPECT_NE(eqn.find("C-element"), std::string::npos);
}

TEST(Netlist, VerilogWriterProducesModule) {
  const Stg stg = stg::make_paper_fig1();
  const auto result = synthesize(stg, with(Method::UnfoldingApprox));
  const Netlist netlist = Netlist::from_synthesis(stg, result);
  const std::string verilog = netlist.to_verilog("fig1");
  EXPECT_NE(verilog.find("module fig1("), std::string::npos);
  EXPECT_NE(verilog.find("input a, c"), std::string::npos);
  EXPECT_NE(verilog.find("output b"), std::string::npos);
  EXPECT_NE(verilog.find("assign b = "), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST(Netlist, VerilogWriterLatchArchitecture) {
  const Stg stg = stg::make_paper_fig1();
  const auto result = synthesize(stg, with(Method::StateGraph, Architecture::RsLatch));
  const Netlist netlist = Netlist::from_synthesis(stg, result);
  const std::string verilog = netlist.to_verilog();
  EXPECT_NE(verilog.find("b_set"), std::string::npos);
  EXPECT_NE(verilog.find("b_reset"), std::string::npos);
  EXPECT_NE(verilog.find("always @*"), std::string::npos);
}

TEST(Netlist, CscConflictBlocksAssembly) {
  const Stg stg = stg::make_vme_bus();
  SynthesisOptions options = with(Method::StateGraph);
  options.throw_on_csc = false;
  const auto result = synthesize(stg, options);
  EXPECT_THROW(Netlist::from_synthesis(stg, result), CscError);
}

class Conformance : public ::testing::TestWithParam<int> {};

TEST_P(Conformance, SynthesisedCircuitsConform) {
  Stg stg;
  switch (GetParam() % 3) {
    case 0: stg = stg::make_paper_fig1(); break;
    case 1: stg = stg::make_paper_fig4ab(); break;
    case 2: stg = stg::make_muller_pipeline(4); break;
  }
  const Architecture arch = GetParam() < 3 ? Architecture::ComplexGate
                            : GetParam() < 6 ? Architecture::StandardC
                                             : Architecture::RsLatch;
  const auto result = synthesize(stg, with(Method::UnfoldingApprox, arch));
  const Netlist netlist = Netlist::from_synthesis(stg, result);
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  const auto violations = verify_conformance(sgraph, netlist);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().detail);
}

INSTANTIATE_TEST_SUITE_P(MethodsAndArchitectures, Conformance, ::testing::Range(0, 9));

TEST(Conformance, DetectsACorruptedGate) {
  const Stg stg = stg::make_paper_fig1();
  const auto result = synthesize(stg, with(Method::UnfoldingApprox));
  Netlist netlist = Netlist::from_synthesis(stg, result);
  // Sabotage: replace b's function with constant 1.
  Netlist broken = netlist;
  const_cast<Gate&>(broken.gates().front()).function =
      logic::Cover::one(stg.signal_count());
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  const auto violations = verify_conformance(sgraph, broken);
  EXPECT_FALSE(violations.empty());
  EXPECT_FALSE(violations.front().detail.empty());
}

}  // namespace
}  // namespace punt::net
