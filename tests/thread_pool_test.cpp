// Unit tests for the worker pool under the synthesis pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/thread_pool.hpp"

namespace punt::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, FutureRethrowsTaskException) {
  ThreadPool pool(2);
  std::future<void> future =
      pool.submit([] { throw std::runtime_error("task exploded"); });
  EXPECT_THROW(
      {
        try {
          future.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task exploded");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotKillTheWorker) {
  ThreadPool pool(1);
  auto boom = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The single worker must still be alive to run this.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&completed] { completed.fetch_add(1); });
    }
  }  // ~ThreadPool joins after finishing the queue
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPool, HardwareDefaultIsPositive) {
  EXPECT_GE(ThreadPool::hardware_default(), 1u);
}

TEST(ThreadPool, PostRunsFireAndForgetTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.post([&completed] { completed.fetch_add(1); });
    }
  }  // destructor drains post()ed tasks too
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, TasksMayPostContinuationsIntoTheSamePool) {
  // The continuation scheduling the task graph relies on: a worker enqueues
  // follow-up work without blocking.  Three chained generations must all
  // run before the pool is destroyed.
  std::atomic<int> generations{0};
  {
    ThreadPool pool(2);
    std::promise<void> done;
    pool.post([&pool, &generations, &done] {
      generations.fetch_add(1);
      pool.post([&pool, &generations, &done] {
        generations.fetch_add(1);
        pool.post([&generations, &done] {
          generations.fetch_add(1);
          done.set_value();
        });
      });
    });
    done.get_future().get();  // the caller may block; workers never do
  }
  EXPECT_EQ(generations.load(), 3);
}

TEST(ThreadPool, ShutdownDrainsAndIsIdempotent) {
  std::atomic<int> completed{0};
  ThreadPool pool(2);
  for (int i = 0; i < 32; ++i) {
    pool.post([&completed] { completed.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(completed.load(), 32);  // everything enqueued before ran
  pool.shutdown();  // a second call (and the destructor later) is a no-op
}

TEST(ThreadPool, DrainingTasksMayStillPostContinuations) {
  // The task graph posts dependents from inside running nodes; a shutdown
  // overlapping that drain must accept (and run) those worker-originated
  // posts — only posts from outside the pool are rejected once stopping.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> continuation_ran{false};
  pool.post([opened] { opened.wait(); });
  pool.post([&pool, &continuation_ran] {
    pool.post([&continuation_ran] { continuation_ran = true; });
  });
  std::thread stopper([&pool] { pool.shutdown(); });
  // Give the stopper time to set stopping_ while the worker is parked in
  // the gated first task; the queue then drains under the stopping flag.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.set_value();
  stopper.join();
  EXPECT_TRUE(continuation_ran.load());
}

TEST(ThreadPool, PostAfterShutdownIsRejectedNotSilentlyDropped) {
  // A post() into a stopped pool used to land in a queue no worker drains —
  // the task vanished.  Now that the daemon keeps one pool alive across
  // requests, a lifecycle bug like that must be loud.
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<bool> ran{false};
  EXPECT_THROW(pool.post([&ran] { ran = true; }), Error);
  EXPECT_THROW((void)pool.submit([&ran] { ran = true; }), Error);
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPool, WorkerIndexIsVisibleInsideTasksOnly) {
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // not a pool thread
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  std::atomic<int> bad{0};
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&bad] {
      const int worker = ThreadPool::current_worker_index();
      if (worker < 0 || worker >= 2) bad.fetch_add(1);
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace punt::util
