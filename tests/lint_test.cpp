// Tests for the `punt lint` subsystem: the rule catalog, per-rule positive
// and negative fixtures with exact rule-id + line/column assertions, registry
// cleanliness, mutation tests over registry specs, severity promotion, the
// punt-lint-report JSON shape, and strict-parse/collecting-parse agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/lint/lint.hpp"
#include "src/lint/rules.hpp"
#include "src/stg/g_format.hpp"
#include "src/util/diagnostics.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"

namespace punt::lint {
namespace {

using util::Diagnostic;
using util::Severity;

/// All findings of `text` under default options.
std::vector<Diagnostic> findings(std::string_view text) {
  return lint_text(text, "test.g").diagnostics;
}

/// The first finding with `rule`, or nullptr.
const Diagnostic* find_rule(const std::vector<Diagnostic>& diagnostics,
                            std::string_view rule) {
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

/// Count of findings with `rule`.
std::size_t count_rule(const std::vector<Diagnostic>& diagnostics,
                       std::string_view rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// --- Catalog ------------------------------------------------------------------

TEST(LintCatalog, ElevenRulesWithUniqueStableIds) {
  const std::vector<RuleInfo>& catalog = rule_catalog();
  ASSERT_EQ(catalog.size(), 11u);
  std::set<std::string> ids;
  for (const RuleInfo& rule : catalog) ids.insert(rule.id);
  EXPECT_EQ(ids.size(), catalog.size());
  EXPECT_EQ(std::string(catalog.front().id), "STG000");
  EXPECT_EQ(std::string(catalog.back().id), "STG010");
  for (const RuleInfo& rule : catalog) {
    EXPECT_FALSE(std::string(rule.summary).empty()) << rule.id;
  }
}

// --- Registry cleanliness -----------------------------------------------------

TEST(LintRegistry, EveryTable1SpecLintsClean) {
  for (const auto& bench : benchmarks::table1()) {
    const std::string text = stg::write_g(bench.make());
    const FileLint lint = lint_text(text, bench.name);
    EXPECT_TRUE(lint.ok()) << bench.name << "\n" << render_human(lint, text);
    EXPECT_TRUE(lint.diagnostics.empty())
        << bench.name << " has findings:\n" << render_human(lint, text);
  }
}

// --- STG000: syntax -----------------------------------------------------------

TEST(LintSTG000, UnknownDirectiveWithPosition) {
  const auto diags = findings(".model t\n.bogus x\n.graph\na b\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG000");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->message, "unknown directive '.bogus'");
  EXPECT_EQ(d->span.line, 2u);
  EXPECT_EQ(d->span.column, 1u);
}

TEST(LintSTG000, MalformedMarkingCountIsDiagnosedNotACrash) {
  // The fail-fast parser crashed through std::stoul on "p=x".
  const auto diags = findings(
      ".model t\n.inputs a\n.outputs b\n.graph\na+ p\np b+\nb+ q\nq a+\n"
      ".marking { p=x }\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG000");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("invalid token count"), std::string::npos);
  EXPECT_EQ(d->span.line, 9u);
}

TEST(LintSTG000, LineOutsideGraphSection) {
  const auto diags = findings(".model t\na b\n.graph\nc d\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG000");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("unexpected line outside .graph"), std::string::npos);
  EXPECT_EQ(d->span.line, 2u);
}

TEST(LintSTG000, MissingEndHasNoSpan) {
  const auto diags = findings(".model t\n.graph\na b\n");
  const Diagnostic* d = find_rule(diags, "STG000");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->message, "missing .end directive");
  EXPECT_FALSE(d->span.known());
}

// --- STG001: duplicates -------------------------------------------------------

TEST(LintSTG001, SignalDeclaredTwiceWithColumn) {
  const auto diags =
      findings(".model t\n.inputs a a\n.graph\na+ p\np a-\na- q\nq a+\n"
               ".marking { p }\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->message, "signal 'a' declared twice");
  EXPECT_EQ(d->span.line, 2u);
  EXPECT_EQ(d->span.column, 11u);  // the second 'a'
}

TEST(LintSTG001, DuplicateArc) {
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ p\na+ p\np a-\na- q\nq a+\n"
      ".marking { p }\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG001");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("duplicate arc a+ -> p"), std::string::npos);
  EXPECT_EQ(d->span.line, 5u);
}

TEST(LintSTG001, DuplicateMarkingAndContradictoryInitValues) {
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p p }\n.init_values a=0 a=1\n.end\n");
  EXPECT_EQ(count_rule(diags, "STG001"), 2u);
  bool saw_marking = false;
  bool saw_init = false;
  for (const Diagnostic& d : diags) {
    if (d.rule != "STG001") continue;
    if (d.message.find("marked twice") != std::string::npos) {
      saw_marking = true;
      EXPECT_EQ(d.span.line, 8u);
    }
    if (d.message.find("contradictory .init_values") != std::string::npos) {
      saw_init = true;
      EXPECT_EQ(d.span.line, 9u);
      EXPECT_EQ(d.severity, Severity::Warning);
    }
  }
  EXPECT_TRUE(saw_marking);
  EXPECT_TRUE(saw_init);
}

TEST(LintSTG001, MultipleModelDirectives) {
  const auto diags = findings(
      ".model t\n.model u\n.inputs a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p }\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG001");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("multiple .model"), std::string::npos);
  EXPECT_EQ(d->span.line, 2u);
}

// --- STG002 / STG003: declaration vs use --------------------------------------

TEST(LintSTG002, DeclaredButNeverFires) {
  const auto diags = findings(
      ".model t\n.inputs a\n.outputs ghost\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p }\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Note);
  EXPECT_NE(d->message.find("'ghost'"), std::string::npos);
  EXPECT_EQ(d->span.line, 3u);
  EXPECT_EQ(d->span.column, 10u);
}

TEST(LintSTG003, PlaceNamedLikeUndeclaredTransition) {
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ req+\nreq+ a-\na- q\nq a+\n"
      ".marking { q }\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_NE(d->message.find("'req+'"), std::string::npos);
  EXPECT_NE(d->message.find("undeclared signal 'req'"), std::string::npos);
  EXPECT_EQ(d->span.line, 4u);
  EXPECT_EQ(d->span.column, 4u);
}

TEST(LintSTG003, DeclaredSignalsAndImplicitPlacesAreNotFlagged) {
  // "a+ b+" creates the implicit place "<a+,b+>"; its angle-bracket name
  // must not read as an undeclared transition.
  const auto diags = findings(
      ".model t\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n"
      ".marking { <b-,a+> }\n.end\n");
  EXPECT_EQ(find_rule(diags, "STG003"), nullptr);
}

// --- STG004: reachability -----------------------------------------------------

TEST(LintSTG004, TransitionUnreachableFromMarking) {
  // The a-cycle is marked; the b-cycle has no token anywhere.
  const auto diags = findings(
      ".model t\n.inputs a b\n.graph\na+ p\np a-\na- q\nq a+\n"
      "b+ r\nr b-\nb- s\ns b+\n.marking { p }\n.init_values a=0 b=0\n.end\n");
  EXPECT_EQ(count_rule(diags, "STG004"), 2u);  // b+ and b-
  const Diagnostic* d = find_rule(diags, "STG004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_NE(d->message.find("can never fire"), std::string::npos);
  EXPECT_EQ(d->span.line, 8u);  // first use of b+ ("b+ r")
}

TEST(LintSTG004, EmptyMarkingReportsOnceNotPerTransition) {
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { }\n.init_values a=0\n.end\n");
  ASSERT_EQ(count_rule(diags, "STG004"), 1u);
  EXPECT_NE(find_rule(diags, "STG004")->message.find("no place is initially marked"),
            std::string::npos);
}

// --- STG005: dangling structure -----------------------------------------------

TEST(LintSTG005, EmptyPresetAndPostsetAreErrors) {
  // a+ never appears as a target (empty preset); a- never as a source
  // (empty postset).
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ p\np a-\n.marking { p }\n"
      ".init_values a=0\n.end\n");
  ASSERT_EQ(count_rule(diags, "STG005"), 2u);
  bool saw_preset = false;
  bool saw_postset = false;
  for (const Diagnostic& d : diags) {
    if (d.rule != "STG005") continue;
    EXPECT_EQ(d.severity, Severity::Error);
    if (d.message.find("empty preset") != std::string::npos) saw_preset = true;
    if (d.message.find("empty postset") != std::string::npos) saw_postset = true;
  }
  EXPECT_TRUE(saw_preset);
  EXPECT_TRUE(saw_postset);
}

TEST(LintSTG005, SourceAndSinkPlacesAreWarnings) {
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ sink\nsource a-\na- q\nq a+\n"
      ".marking { q }\n.init_values a=0\n.end\n");
  bool saw_source = false;
  bool saw_sink = false;
  for (const Diagnostic& d : diags) {
    if (d.rule != "STG005") continue;
    EXPECT_EQ(d.severity, Severity::Warning);
    if (d.message.find("'source' has no producers") != std::string::npos) {
      saw_source = true;
    }
    if (d.message.find("'sink' has no consumers") != std::string::npos) saw_sink = true;
  }
  EXPECT_TRUE(saw_source);
  EXPECT_TRUE(saw_sink);
}

// --- STG006: alternation ------------------------------------------------------

TEST(LintSTG006, SinglePolaritySignal) {
  const auto diags = findings(
      ".model t\n.inputs a\n.outputs b\n.graph\na+ p\np b+\nb+ q\nq a-\n"
      "a- r\nr a+\n.marking { r }\n.init_values a=0 b=0\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG006");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("signal 'b' only ever rises"), std::string::npos);
  EXPECT_EQ(d->span.line, 3u);  // the declaration site
  EXPECT_EQ(d->span.column, 10u);
}

TEST(LintSTG006, DirectSamePolaritySuccession) {
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ p\np a+/2\na+/2 q\nq a-\na- r\nr a+\n"
      ".marking { r }\n.init_values a=0\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG006");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("alternation broken"), std::string::npos);
  EXPECT_NE(d->message.find("'a+/2'"), std::string::npos);
}

// --- STG007: 1-safety hints ---------------------------------------------------

TEST(LintSTG007, MultiTokenPlace) {
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p=2 }\n.init_values a=0\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG007");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("initially holds 2 tokens"), std::string::npos);
}

TEST(LintSTG007, ConcurrentProducersIntoOnePlace) {
  // a+ forks into two concurrent branches (b+, c+) that both feed `merge`
  // with no ordering, no shared pre-place, and no separating choice.
  const auto diags = findings(
      ".model t\n.inputs a\n.outputs b c\n.graph\n"
      "a+ p q\np b+\nq c+\nb+ merge\nc+ merge\nmerge a-\na- r\nr a+\n"
      "b+ s\ns b-\nb- sb\nc+ u\nu c-\nc- sc\nsb a+\nsc a+\n"
      ".marking { r }\n.init_values a=0 b=0 c=0\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG007");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'merge'"), std::string::npos);
  EXPECT_NE(d->message.find("1-safety"), std::string::npos);
}

TEST(LintSTG007, ChoiceMergeIsNotFlagged) {
  // Classic free-choice branch/merge: p chooses between a+ and a+/2, both
  // feed the merge place.  Mutually exclusive, so no 1-safety hint.
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\n"
      "p a+ a+/2\na+ merge\na+/2 merge\nmerge a-\na- p\n"
      ".marking { p }\n.init_values a=0\n.end\n");
  EXPECT_EQ(find_rule(diags, "STG007"), nullptr);
}

// --- STG008: self-race --------------------------------------------------------

TEST(LintSTG008, SelfTriggeringSignal) {
  const auto diags = findings(
      ".model t\n.outputs a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { q }\n.init_values a=0\n.end\n");
  EXPECT_GE(count_rule(diags, "STG008"), 1u);
  const Diagnostic* d = find_rule(diags, "STG008");
  EXPECT_NE(d->message.find("triggers itself"), std::string::npos);
}

TEST(LintSTG008, AutoConcurrentInstancesAfterFork) {
  const auto diags = findings(
      ".model t\n.inputs a b\n.graph\n"
      "b+ p q\np a+ \nq a+/2\na+ r\na+/2 s\nr a-\ns a-/2\na- t\na-/2 u\n"
      "t b-\nu b-\nb- v\nv b+\n.marking { v }\n.init_values a=0 b=0\n.end\n");
  // The fixture also self-triggers (a+ -> r -> a-), so scan all STG008
  // findings for the auto-concurrency one instead of taking the first.
  const Diagnostic* d = nullptr;
  for (const Diagnostic& candidate : diags) {
    if (candidate.rule == "STG008" &&
        candidate.message.find("auto-concurrency") != std::string::npos) {
      d = &candidate;
      break;
    }
  }
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'a+'"), std::string::npos);
}

// --- STG009: choice shape -----------------------------------------------------

TEST(LintSTG009, OutputResolvedChoice) {
  const auto diags = findings(
      ".model t\n.inputs a\n.outputs b\n.graph\n"
      "p a+ b+\na+ q\nb+ r\nq a-\nr b-\na- p\nb- p\n"
      ".marking { p }\n.init_values a=0 b=0\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG009");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("non-input transition 'b+'"), std::string::npos);
}

TEST(LintSTG009, InputChoiceIsTheSanctionedShape) {
  const auto diags = findings(
      ".model t\n.inputs a b\n.graph\n"
      "p a+ b+\na+ q\nb+ r\nq a-\nr b-\na- p\nb- p\n"
      ".marking { p }\n.init_values a=0 b=0\n.end\n");
  EXPECT_EQ(find_rule(diags, "STG009"), nullptr);
}

// --- STG010: CSC pre-screen ---------------------------------------------------

TEST(LintSTG010, IdenticalPresetsOfOneSignal) {
  // Both a+ instances are alternatives of the same choice place and nothing
  // else: identical presets, indistinguishable firing contexts.
  const auto diags = findings(
      ".model t\n.inputs a\n.graph\n"
      "p a+ a+/2\na+ merge\na+/2 merge\nmerge a-\na- p\n"
      ".marking { p }\n.init_values a=0\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Note);
  EXPECT_NE(d->message.find("identical presets"), std::string::npos);
}

// --- Multi-defect acceptance --------------------------------------------------

TEST(LintMultiDefect, OnePassReportsSeveralDistinctRulesWithPositions) {
  const std::string text =
      ".model broken\n"
      ".inputs a a\n"
      ".outputs b c\n"
      ".graph\n"
      "a+ b+\n"
      "b+ a-\n"
      "a- bb+\n"
      "bb+ a+\n"
      ".marking { <a+,b+> }\n"
      ".end\n";
  const auto diags = findings(text);
  std::set<std::string> rules;
  std::size_t with_position = 0;
  for (const Diagnostic& d : diags) {
    rules.insert(d.rule);
    if (d.span.known()) ++with_position;
  }
  EXPECT_GE(rules.size(), 2u) << render_human(lint_text(text, "t.g"), text);
  EXPECT_GE(with_position, 2u);
  EXPECT_NE(rules.find("STG001"), rules.end());  // 'a' declared twice
  EXPECT_NE(rules.find("STG003"), rules.end());  // 'bb+' undeclared
}

// --- Mutation tests over registry specs ---------------------------------------

TEST(LintMutation, DroppedEndDirectiveFiresSTG000) {
  for (const auto& bench : benchmarks::table1()) {
    std::string text = stg::write_g(bench.make());
    const std::size_t end = text.rfind(".end");
    ASSERT_NE(end, std::string::npos) << bench.name;
    text.erase(end);
    const auto diags = findings(text);
    const Diagnostic* d = find_rule(diags, "STG000");
    ASSERT_NE(d, nullptr) << bench.name;
    EXPECT_EQ(d->message, "missing .end directive") << bench.name;
  }
}

TEST(LintMutation, DroppedMarkingFiresSTG004) {
  for (const auto& bench : benchmarks::table1()) {
    std::string text = stg::write_g(bench.make());
    const std::size_t marking = text.find(".marking");
    ASSERT_NE(marking, std::string::npos) << bench.name;
    const std::size_t nl = text.find('\n', marking);
    text.erase(marking, nl - marking + 1);
    const auto diags = findings(text);
    const Diagnostic* d = find_rule(diags, "STG004");
    ASSERT_NE(d, nullptr) << bench.name;
    EXPECT_NE(d->message.find("no place is initially marked"), std::string::npos)
        << bench.name;
  }
}

TEST(LintMutation, DuplicatedDeclarationFiresSTG001) {
  for (const auto& bench : benchmarks::table1()) {
    std::string text = stg::write_g(bench.make());
    // Duplicate the first declared signal onto its own directive line.
    const std::size_t inputs = text.find(".inputs ");
    ASSERT_NE(inputs, std::string::npos) << bench.name;
    const std::size_t name_begin = inputs + 8;
    const std::size_t name_end = text.find_first_of(" \n", name_begin);
    const std::string first = text.substr(name_begin, name_end - name_begin);
    const std::size_t nl = text.find('\n', inputs);
    text.insert(nl, " " + first);
    const auto diags = findings(text);
    const Diagnostic* d = find_rule(diags, "STG001");
    ASSERT_NE(d, nullptr) << bench.name;
    EXPECT_EQ(d->message, "signal '" + first + "' declared twice") << bench.name;
  }
}

TEST(LintMutation, OrphanedArcLineFiresADiagnostic) {
  // Append an arc between two fresh places: structurally meaningless.
  for (const auto& bench : benchmarks::table1()) {
    std::string text = stg::write_g(bench.make());
    const std::size_t marking = text.find(".marking");
    ASSERT_NE(marking, std::string::npos) << bench.name;
    text.insert(marking, "orphan_src orphan_dst\n");
    const auto diags = findings(text);
    const Diagnostic* d = find_rule(diags, "STG000");
    ASSERT_NE(d, nullptr) << bench.name;
    EXPECT_NE(d->message.find("arc between two places"), std::string::npos)
        << bench.name;
  }
}

// --- Severity promotion -------------------------------------------------------

TEST(LintPromotion, WerrorPromotesWarningsButNeverNotes) {
  const std::string text =
      ".model t\n.inputs a\n.outputs ghost\n.graph\na+ req+\nreq+ a-\na- q\nq a+\n"
      ".marking { q }\n.init_values a=0 ghost=0\n.end\n";
  const FileLint relaxed = lint_text(text, "t.g");
  EXPECT_EQ(relaxed.errors, 0u);
  EXPECT_GE(relaxed.warnings, 1u);  // STG003 'req+'
  EXPECT_GE(relaxed.notes, 1u);     // STG002 'ghost'
  EXPECT_TRUE(relaxed.ok());

  LintOptions all;
  all.promote_all_warnings = true;
  const FileLint strict = lint_text(text, "t.g", all);
  EXPECT_EQ(strict.warnings, 0u);
  EXPECT_EQ(strict.errors, relaxed.warnings);
  EXPECT_EQ(strict.notes, relaxed.notes);  // notes stay notes
  EXPECT_FALSE(strict.ok());
}

TEST(LintPromotion, PerRulePromotionTouchesOnlyThatRule) {
  const std::string text =
      ".model t\n.inputs a\n.outputs b\n.graph\na+ req+\nreq+ a-\na- q\nq a+\n"
      "b+ r\nr b-\nb- s\ns b+\n.marking { q }\n.init_values a=0 b=0\n.end\n";
  // Findings include STG003 (req+) and STG004 (b's cycle unmarked).
  LintOptions some;
  some.promote_rules = {"STG003"};
  const FileLint lint = lint_text(text, "t.g", some);
  bool stg003_error = false;
  bool stg004_warning = false;
  for (const Diagnostic& d : lint.diagnostics) {
    if (d.rule == "STG003" && d.severity == Severity::Error) stg003_error = true;
    if (d.rule == "STG004" && d.severity == Severity::Warning) stg004_warning = true;
  }
  EXPECT_TRUE(stg003_error);
  EXPECT_TRUE(stg004_warning);
  EXPECT_FALSE(lint.ok());
}

// --- JSON report --------------------------------------------------------------

TEST(LintJson, ReportParsesAndCarriesTheFindings) {
  const std::string text =
      ".model t\n.inputs a a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p }\n.init_values a=0\n.end\n";
  const FileLint lint = lint_text(text, "spec \"quoted\".g");
  const std::string json = render_json({lint});
  const util::JsonValue root = util::parse_json(json);
  EXPECT_EQ(util::json_string(root, "schema", "lint report"), "punt-lint-report");
  EXPECT_EQ(util::json_count(root, "version", "lint report"), 2u);
  const util::JsonValue& files =
      util::json_require(root, "files", util::JsonValue::Type::Array, "lint report");
  ASSERT_EQ(files.array.size(), 1u);
  const util::JsonValue& file = files.array.front();
  EXPECT_EQ(util::json_string(file, "file", "file entry"), "spec \"quoted\".g");
  EXPECT_FALSE(util::json_bool(file, "ok", "file entry"));
  EXPECT_EQ(util::json_count(file, "errors", "file entry"), 1u);
  const util::JsonValue& diags =
      util::json_require(file, "diagnostics", util::JsonValue::Type::Array, "file entry");
  ASSERT_GE(diags.array.size(), 1u);
  const util::JsonValue& first = diags.array.front();
  EXPECT_EQ(util::json_string(first, "rule", "diagnostic"), "STG001");
  EXPECT_EQ(util::json_string(first, "severity", "diagnostic"), "error");
  EXPECT_EQ(util::json_count(first, "line", "diagnostic"), 2u);
  EXPECT_EQ(util::json_count(first, "column", "diagnostic"), 11u);
  EXPECT_FALSE(util::json_string(first, "message", "diagnostic").empty());
  // v2 additions: every diagnostic carries its tier and a witnesses array
  // (empty on structural findings — v1 consumers simply ignore both).
  EXPECT_EQ(util::json_string(first, "tier", "diagnostic"), "structural");
  EXPECT_TRUE(
      util::json_require(first, "witnesses", util::JsonValue::Type::Array, "diagnostic")
          .array.empty());
}

TEST(LintJson, CleanFileHasEmptyDiagnosticsArray) {
  const std::string text = stg::write_g(benchmarks::table1().front().make());
  const std::string json = render_json({lint_text(text, "clean.g")});
  const util::JsonValue root = util::parse_json(json);
  const util::JsonValue& file =
      util::json_require(root, "files", util::JsonValue::Type::Array, "report")
          .array.front();
  EXPECT_TRUE(util::json_bool(file, "ok", "file"));
  EXPECT_TRUE(util::json_require(file, "diagnostics", util::JsonValue::Type::Array,
                                 "file")
                  .array.empty());
}

// --- Provenance ---------------------------------------------------------------

TEST(LintProvenance, ContinuationLinesResolveToPhysicalPositions) {
  // 'a' is declared twice; the duplicate sits on the continuation line and
  // must be reported at physical line 3, column 3.
  const auto diags = findings(
      ".model t\n.inputs a b \\\n  a\n.graph\na+ p\np a-\na- q\nq a+\n"
      "b+ r\nr b-\nb- s\ns b+\n.marking { p s }\n.init_values a=0 b=0\n.end\n");
  const Diagnostic* d = find_rule(diags, "STG001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->message, "signal 'a' declared twice");
  EXPECT_EQ(d->span.line, 3u);
  EXPECT_EQ(d->span.column, 3u);
}

TEST(LintProvenance, CommentsNeverCarryFindings) {
  // The handshake itself is clean (a single-signal loop would self-trigger),
  // so any finding here could only come from the comment text leaking in.
  const auto diags = findings(
      ".model t\n.inputs a # a a a .bogus\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n"
      ".init_values a=0 b=0\n.end\n");
  EXPECT_TRUE(diags.empty());
}

// --- Strict-parse agreement ---------------------------------------------------

TEST(LintStrictParse, FirstErrorDiagnosticIsExactlyWhatParseGThrows) {
  const std::vector<std::string> specs = {
      ".model t\n.inputs a a\n.graph\na+ p\np a+\n.marking { p }\n.end\n",
      ".model t\n.bogus\n.graph\na b\n.end\n",
      ".model t\n.graph\na b\n",
      ".model t\n.inputs a\n.graph\na+ p\np a-\na- q\nq a+\n.marking { zz }\n.end\n",
  };
  for (const std::string& text : specs) {
    util::DiagnosticSink sink;
    (void)stg::parse_g_collect(text, sink);
    ASSERT_TRUE(sink.has_errors()) << text;
    std::string first;
    for (const Diagnostic& d : sink.diagnostics()) {
      if (d.severity == Severity::Error) {
        first = d.message;
        break;
      }
    }
    try {
      (void)stg::parse_g(text);
      FAIL() << "parse_g accepted: " << text;
    } catch (const ParseError& e) {
      EXPECT_EQ(std::string(e.what()), first) << text;
    }
  }
}

TEST(LintStrictParse, CleanSpecsNeverThrowAndCollectNothing) {
  for (const auto& bench : benchmarks::table1()) {
    const std::string text = stg::write_g(bench.make());
    util::DiagnosticSink sink;
    const stg::ParsedG parsed = stg::parse_g_collect(text, sink);
    EXPECT_TRUE(parsed.usable) << bench.name;
    EXPECT_TRUE(sink.diagnostics().empty()) << bench.name;
    EXPECT_NO_THROW((void)stg::parse_g(text)) << bench.name;
  }
}

// --- Admission helper ---------------------------------------------------------

TEST(LintAdmission, ErrorsOnlyNoPromotion) {
  // Warnings (STG003) don't block admission; errors (STG001) do.
  EXPECT_TRUE(lint_errors(".model t\n.inputs a\n.graph\na+ req+\nreq+ a-\n"
                          "a- q\nq a+\n.marking { q }\n.init_values a=0\n.end\n")
                  .empty());
  const auto defects = lint_errors(
      ".model t\n.inputs a a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p }\n.init_values a=0\n.end\n");
  ASSERT_EQ(defects.size(), 1u);
  EXPECT_EQ(defects.front().rule, "STG001");
  EXPECT_EQ(defects.front().severity, Severity::Error);
}

// --- Rendering ----------------------------------------------------------------

TEST(LintRender, CaretBlockAndSummaryLine) {
  const std::string text =
      ".model t\n.inputs a a\n.graph\na+ p\np a-\na- q\nq a+\n"
      ".marking { p }\n.init_values a=0\n.end\n";
  const FileLint lint = lint_text(text, "spec.g");
  const std::string human = render_human(lint, text);
  EXPECT_NE(human.find("spec.g:2:11: error: signal 'a' declared twice [STG001]"),
            std::string::npos)
      << human;
  EXPECT_NE(human.find("    2 | .inputs a a"), std::string::npos) << human;
  EXPECT_NE(human.find("      |           ^"), std::string::npos) << human;
  EXPECT_NE(human.find("hint: "), std::string::npos) << human;
  EXPECT_NE(human.find("spec.g: 1 error"), std::string::npos) << human;
}

TEST(LintRender, CleanFileSaysClean) {
  const std::string text = stg::write_g(benchmarks::table1().front().make());
  const FileLint lint = lint_text(text, "ok.g");
  EXPECT_NE(render_human(lint, text).find("ok.g: clean"), std::string::npos);
}

}  // namespace
}  // namespace punt::lint
