// Randomised cross-checks of the cover algebra against brute-force
// pointwise evaluation: every operator used by the synthesis pipeline
// (intersect, cofactor, containment, tautology, complement, espresso) is
// compared with its set-theoretic definition on exhaustively enumerated
// small spaces.
#include <gtest/gtest.h>

#include <vector>

#include "src/logic/cover.hpp"
#include "src/logic/espresso.hpp"
#include "src/util/xorshift.hpp"

namespace punt::logic {
namespace {

std::vector<std::vector<std::uint8_t>> all_points(std::size_t n) {
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t v = 0; v < (std::size_t{1} << n); ++v) {
    std::vector<std::uint8_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = (v >> i) & 1;
    out.push_back(std::move(p));
  }
  return out;
}

Cover random_cover(XorShift& rng, std::size_t n, std::size_t max_cubes) {
  Cover f(n);
  const std::size_t cubes = rng.below(max_cubes + 1);
  for (std::size_t i = 0; i < cubes; ++i) {
    Cube c(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto r = rng.below(4);  // bias towards DC for wider cubes
      c.set(v, r == 0 ? Lit::Zero : (r == 1 ? Lit::One : Lit::DC));
    }
    f.add(c);
  }
  return f;
}

class CoverAlgebra : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    XorShift rng(static_cast<std::uint64_t>(GetParam()) * 0x9E37 + 5);
    n = 2 + rng.below(4);  // 2..5 variables
    f = random_cover(rng, n, 5);
    g = random_cover(rng, n, 5);
    points = all_points(n);
    rng_state = rng;
  }
  std::size_t n = 0;
  Cover f{0}, g{0};
  std::vector<std::vector<std::uint8_t>> points;
  XorShift rng_state{1};
};

TEST_P(CoverAlgebra, IntersectIsPointwiseAnd) {
  const Cover i = f.intersect(g);
  for (const auto& p : points) {
    EXPECT_EQ(i.covers_point(p), f.covers_point(p) && g.covers_point(p));
  }
}

TEST_P(CoverAlgebra, IntersectsAgreesWithProduct) {
  EXPECT_EQ(f.intersects(g), !f.intersect(g).empty());
}

TEST_P(CoverAlgebra, ComplementIsPointwiseNot) {
  const Cover c = f.complement();
  for (const auto& p : points) {
    EXPECT_NE(c.covers_point(p), f.covers_point(p));
  }
}

TEST_P(CoverAlgebra, TautologyIffAllPointsCovered) {
  bool all = true;
  for (const auto& p : points) all = all && f.covers_point(p);
  EXPECT_EQ(f.tautology(), all);
}

TEST_P(CoverAlgebra, ContainsCoverIffPointwiseSubset) {
  bool subset = true;
  for (const auto& p : points) {
    if (g.covers_point(p) && !f.covers_point(p)) subset = false;
  }
  EXPECT_EQ(f.contains_cover(g), subset);
}

TEST_P(CoverAlgebra, SccPreservesSemantics) {
  Cover reduced = f;
  reduced.make_irredundant_scc();
  EXPECT_LE(reduced.cube_count(), f.cube_count());
  for (const auto& p : points) {
    EXPECT_EQ(reduced.covers_point(p), f.covers_point(p));
  }
}

TEST_P(CoverAlgebra, CofactorSemantics) {
  // F|c covers p (in the free coordinates) iff F covers the point obtained
  // by overriding p with c's constants.
  XorShift rng = rng_state;
  Cube c(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto r = rng.below(3);
    c.set(v, r == 0 ? Lit::Zero : (r == 1 ? Lit::One : Lit::DC));
  }
  const Cover fc = f.cofactor(c);
  for (const auto& p : points) {
    std::vector<std::uint8_t> forced = p;
    for (std::size_t v = 0; v < n; ++v) {
      if (c.get(v) != Lit::DC) forced[v] = c.get(v) == Lit::One ? 1 : 0;
    }
    EXPECT_EQ(fc.covers_point(p), f.covers_point(forced));
  }
}

TEST_P(CoverAlgebra, EspressoSoundOnDisjointPair) {
  // Blocking = points not in f (exact complement): result must equal f as a
  // point set and never grow beyond what the DC-freedom (none here) allows.
  const Cover blocking = f.complement();
  const Cover min = espresso(f, blocking);
  for (const auto& p : points) {
    EXPECT_EQ(min.covers_point(p), f.covers_point(p));
  }
  EXPECT_LE(min.literal_count(), f.literal_count() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverAlgebra, ::testing::Range(0, 25));

}  // namespace
}  // namespace punt::logic
