// Edge cases across the stack: signals starting at 1 (the ⊥-slice corner),
// constant signals, espresso stats, zero-variable covers, generator
// validity, round-trips of non-trivial markings.
#include <gtest/gtest.h>

#include "src/benchmarks/templates.hpp"
#include "src/core/slices.hpp"
#include "src/core/synthesis.hpp"
#include "src/logic/espresso.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/g_format.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/error.hpp"
#include "src/util/xorshift.hpp"

namespace punt {
namespace {

using stg::Polarity;
using stg::SignalId;
using stg::SignalKind;
using stg::Stg;

/// Two-signal ring that starts with both signals HIGH: x- ; y- ; x+ ; y+.
Stg make_high_start_ring() {
  Stg stg;
  stg.set_name("high_start");
  const SignalId x = stg.add_signal("x", SignalKind::Output);
  const SignalId y = stg.add_signal("y", SignalKind::Output);
  const auto x_dn = stg.add_transition(x, Polarity::Fall);
  const auto y_dn = stg.add_transition(y, Polarity::Fall);
  const auto x_up = stg.add_transition(x, Polarity::Rise);
  const auto y_up = stg.add_transition(y, Polarity::Rise);
  auto& net = stg.net();
  const auto p0 = net.add_place("p0");
  const auto p1 = net.add_place("p1");
  const auto p2 = net.add_place("p2");
  const auto p3 = net.add_place("p3");
  net.add_arc(p0, x_dn);
  net.add_arc(x_dn, p1);
  net.add_arc(p1, y_dn);
  net.add_arc(y_dn, p2);
  net.add_arc(p2, x_up);
  net.add_arc(x_up, p3);
  net.add_arc(p3, y_up);
  net.add_arc(y_up, p0);
  net.set_initial_tokens(p0, 1);
  stg.set_initial_value(x, 1);
  stg.set_initial_value(y, 1);
  stg.validate();
  return stg;
}

TEST(HighStart, InitialOneSignalsSynthesise) {
  const Stg stg = make_high_start_ring();
  for (const core::Method m : {core::Method::UnfoldingApprox,
                               core::Method::UnfoldingExact,
                               core::Method::StateGraph}) {
    core::SynthesisOptions options;
    options.method = m;
    const auto result = core::synthesize(stg, options);
    // x = y' and y = x (1 literal each) or equivalent phase choices.
    EXPECT_EQ(result.literal_count(), 2u) << int(m);
    const auto netlist = net::Netlist::from_synthesis(stg, result);
    const auto sgraph = sg::StateGraph::build(stg);
    EXPECT_TRUE(net::verify_conformance(sgraph, netlist).empty()) << int(m);
  }
}

TEST(HighStart, BottomSliceCarriesOnSet) {
  // v0[x] = 1, so the on-set partitioning of x includes a ⊥-entry slice
  // bounded by first(x) = the falling instance.
  const Stg stg = make_high_start_ring();
  const auto unf = unf::Unfolding::build(stg);
  const SignalId x = *stg.find_signal("x");
  const auto slices = core::signal_slices(unf, x, true);
  bool has_bottom = false;
  for (const auto& slice : slices) {
    if (unf.is_initial(slice.entry)) {
      has_bottom = true;
      ASSERT_FALSE(slice.bounds.empty());
      EXPECT_EQ(stg.transition_name(unf.transition(slice.bounds.front())), "x-");
    }
  }
  EXPECT_TRUE(has_bottom);
}

TEST(ConstantSignal, SignalWithoutTransitionsBecomesConstantGate) {
  // 'mode' never toggles: its gate must be the constant of its value.
  Stg stg = stg::make_paper_fig1();
  const SignalId mode = stg.add_signal("mode", SignalKind::Output);
  stg.set_initial_value(mode, 1);
  const auto result = core::synthesize(stg);
  const auto& impl = result.implementation(mode);
  const auto sgraph = sg::StateGraph::build(stg);
  for (std::size_t s = 0; s < sgraph.state_count(); ++s) {
    const bool value = impl.gate_covers_on ? impl.gate.covers_point(sgraph.code(s))
                                           : !impl.gate.covers_point(sgraph.code(s));
    EXPECT_TRUE(value);  // constant 1 in every reachable state
  }
}

TEST(Espresso, StatsAreFilled) {
  logic::Cover on(3), off(3);
  for (const char* s : {"100", "101", "110", "111"}) on.add(logic::Cube::from_string(s));
  off.add(logic::Cube::from_string("0--"));
  logic::MinimizeStats stats;
  const auto min = logic::espresso(on, off, &stats);
  EXPECT_EQ(stats.initial_cubes, 4u);
  EXPECT_EQ(stats.initial_literals, 12u);
  EXPECT_EQ(stats.final_cubes, min.cube_count());
  EXPECT_EQ(stats.final_literals, 1u);  // f = a
}

TEST(Espresso, IterationCapRespected) {
  logic::Cover on(2), off(2);
  on.add(logic::Cube::from_string("11"));
  off.add(logic::Cube::from_string("00"));
  logic::EspressoOptions options;
  options.max_iterations = 0;  // first EXPAND/IRREDUNDANT only
  EXPECT_NO_THROW(logic::espresso(on, off, nullptr, options));
}

TEST(Cover, ZeroVariableCovers) {
  logic::Cover zero(0);
  EXPECT_FALSE(zero.tautology());
  logic::Cover one = logic::Cover::one(0);
  EXPECT_TRUE(one.tautology());
  EXPECT_TRUE(one.covers_point({}));
  EXPECT_EQ(one.complement().cube_count(), 0u);
  EXPECT_EQ(zero.complement().cube_count(), 1u);
}

TEST(Cover, CappedComplementDegradesGracefully) {
  // A 12-variable parity-ish cover makes the complement large; tiny caps
  // must return nullopt instead of burning time.
  logic::Cover f(12);
  XorShift rng(99);
  for (int i = 0; i < 40; ++i) {
    logic::Cube c(12);
    for (std::size_t v = 0; v < 12; ++v) {
      const auto r = rng.below(3);
      c.set(v, r == 0 ? logic::Lit::Zero : (r == 1 ? logic::Lit::One : logic::Lit::DC));
    }
    f.add(c);
  }
  const auto capped = f.complement_capped(1);
  if (capped.has_value()) {
    EXPECT_LE(capped->cube_count(), 1u);  // genuinely tiny complement
  }
  const auto full = f.complement();
  const auto generous = f.complement_capped(1000000);
  ASSERT_TRUE(generous.has_value());
  generous->cube_count();  // must be usable
  EXPECT_EQ(full.cube_count(), generous->cube_count());
}

TEST(GFormat, InternalAndDummySections) {
  const char* text = R"(
.model mix
.inputs a
.outputs b
.internal w
.dummy eps
.graph
a+ eps
eps b+
b+ w+
w+ a-
a- b-
b- w-
w- a+
.marking { <w-,a+> }
.end
)";
  const Stg stg = stg::parse_g(text);
  EXPECT_EQ(stg.signal_kind(*stg.find_signal("w")), SignalKind::Internal);
  EXPECT_TRUE(stg.has_dummies());
  // Dummies block synthesis with a clear message, but the SG still builds.
  EXPECT_NO_THROW(sg::StateGraph::build(stg));
  EXPECT_THROW(core::synthesize(stg), ImplementabilityError);
}

TEST(GFormat, RoundTripChoiceController) {
  const Stg original = benchmarks::choice_controller("cc_rt", {2, 3});
  const Stg reparsed = stg::parse_g(stg::write_g(original));
  const auto sg_a = sg::StateGraph::build(original);
  const auto sg_b = sg::StateGraph::build(reparsed);
  EXPECT_EQ(sg_a.state_count(), sg_b.state_count());
}

TEST(Generators, CounterflowIsTwoIndependentPipelines) {
  const Stg stg = stg::make_counterflow_pipeline(2);
  EXPECT_EQ(stg.signal_count(), 6u);
  const auto unf = unf::Unfolding::build(stg);
  // Both pipeline heads start concurrently.
  const auto enabled = stg.net().enabled_transitions(stg.net().initial_marking());
  ASSERT_EQ(enabled.size(), 2u);
}

TEST(Slices, ConstantSignalSliceSpansEverything) {
  // A signal stuck at 0 has a single ⊥ off-slice with no bounds.
  Stg stg = stg::make_paper_fig1();
  const SignalId mode = stg.add_signal("mode", SignalKind::Output);
  const auto unf = unf::Unfolding::build(stg);
  const auto slices = core::signal_slices(unf, mode, false);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_TRUE(unf.is_initial(slices.front().entry));
  EXPECT_TRUE(slices.front().bounds.empty());
  const auto states = core::enumerate_slice(unf, mode, slices.front());
  EXPECT_EQ(states.codes.size(), 8u);  // all reachable codes, mode column 0
}

TEST(Synthesis, CutBudgetSurfacesFromExactMethod) {
  core::SynthesisOptions options;
  options.method = core::Method::UnfoldingExact;
  options.cut_budget = 2;
  EXPECT_THROW(core::synthesize(stg::make_muller_pipeline(6), options), CapacityError);
}

}  // namespace
}  // namespace punt
