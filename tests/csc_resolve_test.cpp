// State-signal insertion and automatic CSC repair.  The VME bus controller
// is the reference case: inserting csc0 (rise after lds+, fall after d-)
// separates the two 10101-coded states and makes the spec synthesisable.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/csc_resolve.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

using stg::Stg;

TEST(InsertStateSignal, SplicesBothEdges) {
  Stg stg = stg::make_vme_bus();
  const std::size_t places_before = stg.net().place_count();
  const stg::SignalId csc = insert_state_signal(stg, "lds+", "d-");
  EXPECT_EQ(stg.signal_name(csc), "csc0");
  EXPECT_EQ(stg.signal_kind(csc), stg::SignalKind::Internal);
  EXPECT_EQ(stg.net().place_count(), places_before + 2);  // csc0_r and csc0_f
  ASSERT_TRUE(stg.net().find_transition("csc0+").has_value());
  ASSERT_TRUE(stg.net().find_transition("csc0-").has_value());
  // lds+ now feeds only the new place, which feeds csc0+.
  const auto lds_up = *stg.net().find_transition("lds+");
  ASSERT_EQ(stg.net().post(lds_up).size(), 1u);
  EXPECT_EQ(stg.net().place_name(stg.net().post(lds_up).front()), "csc0_r");
}

TEST(InsertStateSignal, InitialValueInferred) {
  Stg stg = stg::make_vme_bus();
  const stg::SignalId csc = insert_state_signal(stg, "lds+", "d-");
  // csc0+ fires before csc0- in every run, so csc0 starts at 0.
  EXPECT_EQ(stg.initial_value(csc), 0);

  Stg stg2 = stg::make_vme_bus();
  const stg::SignalId csc2 = insert_state_signal(stg2, "d-", "lds+");
  // Reversed: the falling edge comes first, so the signal starts at 1.
  EXPECT_EQ(stg2.initial_value(csc2), 1);
}

TEST(InsertStateSignal, RejectsUnknownAndIdenticalSites) {
  Stg stg = stg::make_vme_bus();
  EXPECT_THROW(insert_state_signal(stg, "nope+", "d-"), ValidationError);
  EXPECT_THROW(insert_state_signal(stg, "d-", "d-"), ValidationError);
}

TEST(InsertStateSignal, VmeBecomesSynthesisable) {
  Stg stg = stg::make_vme_bus();
  insert_state_signal(stg, "lds+", "d-");
  const SynthesisResult result = synthesize(stg);  // must not throw CscError
  EXPECT_EQ(result.signals.size(), 4u);            // d, lds, dtack + csc0
  // The repaired circuit conforms to its own state graph.
  const net::Netlist netlist = net::Netlist::from_synthesis(stg, result);
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  EXPECT_TRUE(net::verify_conformance(sgraph, netlist).empty());
  EXPECT_TRUE(sg::csc_violations(stg, sgraph).empty());
}

TEST(ResolveCsc, CleanSpecReturnsUnchanged) {
  const auto resolution = resolve_csc(stg::make_paper_fig1());
  ASSERT_TRUE(resolution.has_value());
  EXPECT_EQ(resolution->signals_added, 0u);
  EXPECT_EQ(resolution->stg.signal_count(), 3u);
}

TEST(ResolveCsc, RepairsTheVmeBus) {
  const auto resolution = resolve_csc(stg::make_vme_bus());
  ASSERT_TRUE(resolution.has_value());
  EXPECT_EQ(resolution->signals_added, 1u);
  EXPECT_EQ(resolution->stg.signal_count(), 6u);
  // The repaired spec synthesises under every method.
  for (const Method m :
       {Method::UnfoldingApprox, Method::UnfoldingExact, Method::StateGraph}) {
    SynthesisOptions options;
    options.method = m;
    EXPECT_NO_THROW(synthesize(resolution->stg, options));
  }
}

TEST(ResolveCsc, RepairedVmeConforms) {
  const auto resolution = resolve_csc(stg::make_vme_bus());
  ASSERT_TRUE(resolution.has_value());
  const SynthesisResult result = synthesize(resolution->stg);
  const net::Netlist netlist = net::Netlist::from_synthesis(resolution->stg, result);
  const sg::StateGraph sgraph = sg::StateGraph::build(resolution->stg);
  EXPECT_TRUE(net::verify_conformance(sgraph, netlist).empty());
}

}  // namespace
}  // namespace punt::core
